//! Kernel launch machinery: block contexts, parallel execution, and the
//! timing model that converts counters into simulated time.
//!
//! A launch executes its blocks as rayon tasks (the simulator's stand-in for
//! SM scheduling). Each block records work/span and memory counters into a
//! [`BlockCounters`]; afterwards a list scheduler places the block durations
//! onto the device's resident-block slots and the makespan becomes the
//! simulated kernel time. Wall-clock never enters the model, so results are
//! deterministic and machine-independent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parking_lot::Mutex;
use rayon::prelude::*;
use wsvd_health::HealthSink;
use wsvd_metrics::MetricsSink;
use wsvd_trace::TraceSink;

use crate::counters::{BlockCounters, LaunchStats, Timeline};
use crate::device::DeviceSpec;
use crate::graph::{GraphState, GraphStats, LaunchGraph};
use crate::profile::Profiler;
use crate::sanitize::{
    bump_global_violations, BlockSanitizeOutcome, HazardTracker, SanitizeMode, SanitizerReport,
};
use crate::smem::{SharedMem, SmemBuf, SmemOverflow};

/// Per-block fixed cost (scheduling, prologue/epilogue), in cycles.
const BLOCK_OVERHEAD_CYCLES: f64 = 200.0;

/// Upper bound on per-SM-slot lanes emitted into a trace. Wide launches can
/// occupy thousands of slots; tracing every one would swamp the viewer, so
/// placements beyond this many slots are aggregated into the kernel span.
const MAX_TRACED_SLOTS: usize = 32;

/// Fixed occupancy histogram buckets (fractions of peak resident threads)
/// used by the per-launch `occupancy` histogram in the metrics registry.
/// Fixed bounds keep snapshots comparable across runs and devices.
pub const OCCUPANCY_BUCKETS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// Error raised by a simulated kernel block.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelError {
    /// A shared-memory allocation exceeded block capacity.
    Smem(SmemOverflow),
    /// Any other kernel failure.
    Other(String),
}

impl From<SmemOverflow> for KernelError {
    fn from(e: SmemOverflow) -> Self {
        KernelError::Smem(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Smem(e) => write!(f, "{e}"),
            KernelError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Launch geometry and resource request for one kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Number of thread blocks.
    pub grid: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory requested per block, in bytes. Must not exceed the
    /// device's static per-block capacity.
    pub smem_bytes_per_block: usize,
    /// Whether the kernel's FMAs may use tensor cores (GEMM kernels on A100).
    pub uses_tensor_cores: bool,
    /// Human-readable kernel name for diagnostics.
    pub label: &'static str,
    /// Per-launch sanitizer override: `None` inherits the GPU's mode.
    pub sanitize: Option<SanitizeMode>,
}

impl KernelConfig {
    /// Convenience constructor with no tensor cores and inherited sanitizing.
    pub fn new(
        grid: usize,
        threads_per_block: usize,
        smem_bytes_per_block: usize,
        label: &'static str,
    ) -> Self {
        Self {
            grid,
            threads_per_block,
            smem_bytes_per_block,
            uses_tensor_cores: false,
            label,
            sanitize: None,
        }
    }
}

/// What one retired block hands back to the launch machinery: its counters,
/// the sanitizer's findings (when enabled), and the first non-finite value
/// the health guard saw (when health is on).
type BlockOutput = (BlockCounters, Option<BlockSanitizeOutcome>, Option<String>);

/// Execution context handed to each simulated thread block.
pub struct BlockCtx {
    smem: SharedMem,
    counters: BlockCounters,
    threads: usize,
    warp_size: usize,
    tx_bytes: usize,
    sanitizer: Option<HazardTracker>,
    finite_guard: bool,
    nonfinite: Option<String>,
}

impl BlockCtx {
    fn new(
        device: &DeviceSpec,
        cfg: &KernelConfig,
        sanitize: SanitizeMode,
        finite_guard: bool,
    ) -> Self {
        Self {
            smem: SharedMem::new(cfg.smem_bytes_per_block),
            counters: BlockCounters::default(),
            threads: cfg.threads_per_block,
            warp_size: device.warp_size,
            tx_bytes: device.gm_transaction_bytes,
            sanitizer: sanitize.is_on().then(HazardTracker::new),
            finite_guard,
            nonfinite: None,
        }
    }

    /// Kernel-boundary NaN/Inf check on `values` (typically a block's output
    /// buffer). No-op unless the GPU's health sink is enabled, so the guard
    /// costs one branch in normal runs and never touches the timing model.
    /// Only the first offense per block is kept.
    pub fn guard_finite(&mut self, values: &[f64]) {
        if !self.finite_guard || self.nonfinite.is_some() {
            return;
        }
        if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            self.nonfinite = Some(format!("element {i} is {v}"));
        }
    }

    /// Threads in this block.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Device warp width.
    #[inline]
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// The block's shared-memory arena.
    #[inline]
    pub fn smem(&self) -> &SharedMem {
        &self.smem
    }

    /// Loads a global-memory slice into a fresh shared-memory buffer,
    /// counting the GM traffic.
    pub fn gm_load_to_smem(&mut self, src: &[f64]) -> Result<SmemBuf, SmemOverflow> {
        self.count_gm_load(src.len());
        self.smem.alloc_from(src)
    }

    /// The single accounting path for coalesced global-memory traffic of `n`
    /// f64 elements: bytes, transactions, and span are all charged here so
    /// loads and stores can never diverge (or double-count) in how they are
    /// modelled.
    fn count_gm(&mut self, n: usize, store: bool) {
        let bytes = (n * 8) as u64;
        if store {
            self.counters.gm_store_bytes += bytes;
        } else {
            self.counters.gm_load_bytes += bytes;
        }
        self.counters.gm_transactions += bytes.div_ceil(self.tx_bytes as u64);
        // The transfer is spread over the block's threads.
        self.counters.span_cycles += (n as f64 / self.threads as f64).ceil();
        if let Some(t) = self.sanitizer.as_mut() {
            t.note_gm_op();
        }
    }

    /// Counts a coalesced global-memory load of `n` f64 elements.
    pub fn count_gm_load(&mut self, n: usize) {
        self.count_gm(n, false);
    }

    /// Counts a coalesced global-memory store of `n` f64 elements.
    pub fn count_gm_store(&mut self, n: usize) {
        self.count_gm(n, true);
    }

    /// Copies SM data back to a global buffer, counting the store.
    pub fn gm_store_from_smem(&mut self, src: &[f64], dst: &mut [f64]) {
        dst.copy_from_slice(src);
        self.count_gm_store(src.len());
    }

    /// True when this block runs under the hazard sanitizer. Kernels may
    /// consult this to skip building instrumentation-only metadata.
    #[inline]
    pub fn sanitizing(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Block-wide barrier (`__syncthreads()`): ends the current hazard epoch,
    /// ordering every earlier shared-memory access before every later one.
    /// Purely a correctness annotation — it adds **no** simulated cycles
    /// (barrier latency is part of the per-step span models), so enabling the
    /// sanitizer never changes timing or numerics.
    #[inline]
    pub fn sync_threads(&mut self) {
        if let Some(t) = self.sanitizer.as_mut() {
            t.barrier();
        }
    }

    /// Records one logical lane arriving at a barrier. Kernels whose lanes
    /// take divergent control flow call this per lane; the sanitizer reports
    /// divergence if lanes end the block with different arrival counts.
    #[inline]
    pub fn lane_sync(&mut self, lane: usize) {
        if let Some(t) = self.sanitizer.as_mut() {
            t.lane_barrier(lane);
        }
    }

    /// Records lane `lane` reading `buf[start..start + len]` in the current
    /// hazard epoch. No-op unless sanitizing.
    #[inline]
    pub fn smem_read(&mut self, lane: usize, buf: &SmemBuf, start: usize, len: usize) {
        if let Some(t) = self.sanitizer.as_mut() {
            t.record_access(lane, buf.id(), start, len, false);
        }
    }

    /// Records lane `lane` writing `buf[start..start + len]` in the current
    /// hazard epoch. No-op unless sanitizing.
    #[inline]
    pub fn smem_write(&mut self, lane: usize, buf: &SmemBuf, start: usize, len: usize) {
        if let Some(t) = self.sanitizer.as_mut() {
            t.record_access(lane, buf.id(), start, len, true);
        }
    }

    /// Records an element-wise parallel step over `items` work items, each
    /// costing `ops` scalar floating-point operations, distributed over the
    /// block's threads.
    pub fn par_step(&mut self, items: usize, ops: u64) {
        self.counters.flops += items as u64 * ops;
        self.counters.smem_traffic_bytes += items as u64 * 16; // 2 operands
        let waves = (items as f64 / self.threads as f64).ceil();
        self.counters.span_cycles += waves * ops as f64;
    }

    /// Records a parallel step executed by a sub-team of `team` threads
    /// (e.g. the α-warp column-pair teams of §IV-B1). `teams` such teams run
    /// concurrently if they fit in the block; extra teams serialize.
    pub fn team_step(&mut self, teams: usize, team: usize, items_per_team: usize, ops: u64) {
        let team = team.max(1);
        self.counters.flops += (teams * items_per_team) as u64 * ops;
        self.counters.smem_traffic_bytes += (teams * items_per_team) as u64 * 16;
        let concurrent_teams = (self.threads / team).max(1);
        let team_waves = (teams as f64 / concurrent_teams as f64).ceil();
        let per_team = (items_per_team as f64 / team as f64).ceil() * ops as f64;
        self.counters.span_cycles += team_waves * per_team;
    }

    /// Records a tree reduction of `len` values by a team of `team` threads
    /// (inner products): `len/team` serial accumulation plus `log2(team)`
    /// combine steps. `teams` reductions proceed concurrently.
    pub fn team_reduce(&mut self, teams: usize, team: usize, len: usize) {
        let team = team.max(1);
        self.counters.flops += (teams * len) as u64 * 2; // multiply + add
        self.counters.smem_traffic_bytes += (teams * len) as u64 * 16;
        let concurrent_teams = (self.threads / team).max(1);
        let team_waves = (teams as f64 / concurrent_teams as f64).ceil();
        let depth = (team as f64).log2().ceil();
        let per_team = (len as f64 / team as f64).ceil() * 2.0 + depth;
        self.counters.span_cycles += team_waves * per_team;
    }

    /// Records a strictly serial section of `ops` scalar operations
    /// (single-thread work; the enemy of Challenge 1).
    pub fn serial_step(&mut self, ops: u64) {
        self.counters.flops += ops;
        self.counters.span_cycles += ops as f64;
    }

    /// Adds raw FLOPs without span (already accounted elsewhere).
    pub fn add_flops(&mut self, flops: u64) {
        self.counters.flops += flops;
    }

    /// Retires the block: returns its counters plus, when sanitizing, the
    /// hazard tracker's findings (any bytes still charged to the arena at
    /// this point were leaked by the kernel body), plus any non-finite
    /// value the health guard caught.
    fn into_parts(self) -> BlockOutput {
        let leaked = self.smem.used_bytes();
        let outcome = self.sanitizer.map(|t| t.finish(leaked));
        (self.counters, outcome, self.nonfinite)
    }
}

/// A simulated GPU: a device spec plus an accumulated timeline.
pub struct Gpu {
    device: DeviceSpec,
    timeline: Mutex<Timeline>,
    profiler: Mutex<Profiler>,
    trace: TraceSink,
    trace_pid: u32,
    metrics: MetricsSink,
    health: HealthSink,
    sanitize: SanitizeMode,
    sanitizer: Mutex<SanitizerReport>,
    graph: Mutex<GraphState>,
}

impl Gpu {
    /// Creates a fresh GPU with an empty timeline. Picks up the process-wide
    /// trace sink (`wsvd_trace::global()`), which is disabled unless the
    /// host installed one — so by default launches pay only an `Option`
    /// check for tracing.
    pub fn new(device: DeviceSpec) -> Self {
        Self::with_trace(device, wsvd_trace::global())
    }

    /// Creates a fresh GPU recording into an explicit trace sink.
    pub fn with_trace(device: DeviceSpec, trace: TraceSink) -> Self {
        let name = device.name;
        Self::with_trace_named(device, trace, name)
    }

    /// Like [`Gpu::with_trace`], with an explicit trace process name (used
    /// by [`crate::GpuCluster`] to label ranks). Picks up the process-wide
    /// sanitize default ([`SanitizeMode::resolved`]: `WSVD_SANITIZE` or
    /// [`crate::sanitize::set_global`]), which is off unless requested, and
    /// the process-wide metrics sink (`wsvd_metrics::global()`), disabled by
    /// default — so unmetered launches pay only an `Option` check.
    pub fn with_trace_named(device: DeviceSpec, trace: TraceSink, name: &str) -> Self {
        let trace_pid = trace.register_process(name);
        Self {
            device,
            timeline: Mutex::new(Timeline::default()),
            profiler: Mutex::new(Profiler::new()),
            trace,
            trace_pid,
            metrics: wsvd_metrics::global(),
            health: wsvd_health::global(),
            sanitize: SanitizeMode::resolved(),
            sanitizer: Mutex::new(SanitizerReport::default()),
            graph: Mutex::new(GraphState::default()),
        }
    }

    /// Creates a fresh GPU with an explicit [`SanitizeMode`], ignoring the
    /// process-wide default (useful in tests, which must not leak sanitizer
    /// state into each other).
    pub fn with_sanitize(device: DeviceSpec, mode: SanitizeMode) -> Self {
        let mut gpu = Self::new(device);
        gpu.sanitize = mode;
        gpu
    }

    /// This GPU's default sanitize mode (individual launches may override it
    /// via [`KernelConfig::sanitize`]).
    pub fn sanitize_mode(&self) -> SanitizeMode {
        self.sanitize
    }

    /// True when launches on this GPU are hazard-checked by default. Layers
    /// above also key their *static* verification passes off this flag.
    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize.is_on()
    }

    /// Snapshot of everything the sanitizer has found on this GPU so far.
    pub fn sanitizer_report(&self) -> SanitizerReport {
        self.sanitizer.lock().clone()
    }

    /// The trace sink this GPU records into (disabled by default).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The metrics sink this GPU records into (disabled by default). Layers
    /// above (the W-cycle, experiments) key their own metrics-only work off
    /// `gpu.metrics().is_enabled()`.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Replaces the metrics sink, ignoring the process-wide default (tests
    /// and experiments that must not pollute the global registry).
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = sink;
    }

    /// The health sink this GPU records into (disabled by default). Layers
    /// above (the W-cycle, experiments) key their own watchdog-only work off
    /// `gpu.health().is_enabled()`.
    pub fn health(&self) -> &HealthSink {
        &self.health
    }

    /// Replaces the health sink, ignoring the process-wide default (tests
    /// and fault-injection experiments that must not share the global
    /// incident log).
    pub fn set_health(&mut self, sink: HealthSink) {
        self.health = sink;
    }

    /// The trace process id for this GPU's tracks (0 when tracing is off).
    pub fn trace_pid(&self) -> u32 {
        self.trace_pid
    }

    /// Snapshot of the per-kernel-label profile (the §V-B nvprof view).
    pub fn profile(&self) -> Profiler {
        self.profiler.lock().clone()
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Snapshot of the accumulated timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline.lock().clone()
    }

    /// Clears the timeline and the per-kernel profile.
    pub fn reset_timeline(&self) {
        *self.timeline.lock() = Timeline::default();
        *self.profiler.lock() = Profiler::new();
    }

    /// Total simulated seconds so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.timeline.lock().seconds
    }

    /// Adds host-side serial time (e.g. per-call driver overhead of a
    /// baseline that loops over single-matrix API calls).
    pub fn add_host_seconds(&self, seconds: f64) {
        self.timeline.lock().seconds += seconds;
    }

    /// Launches a kernel whose blocks each mutate one item of `items`
    /// (`cfg.grid` must equal `items.len()`), the dominant pattern for
    /// batched kernels (one matrix per block).
    pub fn launch_over<T, F>(
        &self,
        cfg: KernelConfig,
        items: &mut [T],
        f: F,
    ) -> Result<LaunchStats, KernelError>
    where
        T: Send,
        F: Fn(usize, &mut T, &mut BlockCtx) -> Result<(), KernelError> + Sync,
    {
        assert_eq!(
            cfg.grid,
            items.len(),
            "grid must match item count in launch_over"
        );
        self.check_cfg(&cfg);
        let sanitize = cfg.sanitize.unwrap_or(self.sanitize);
        let guard = self.health.is_enabled();
        let results: Vec<Result<BlockOutput, KernelError>> = items
            .par_iter_mut()
            .enumerate()
            .map(|(b, item)| {
                let mut ctx = BlockCtx::new(&self.device, &cfg, sanitize, guard);
                f(b, item, &mut ctx)?;
                Ok(ctx.into_parts())
            })
            .collect();
        self.finish(cfg, results)
    }

    /// Launches a kernel whose blocks produce values (inputs captured by the
    /// closure); returns the per-block outputs in grid order.
    pub fn launch_collect<R, F>(
        &self,
        cfg: KernelConfig,
        f: F,
    ) -> Result<(Vec<R>, LaunchStats), KernelError>
    where
        R: Send,
        F: Fn(usize, &mut BlockCtx) -> Result<R, KernelError> + Sync,
    {
        self.check_cfg(&cfg);
        let sanitize = cfg.sanitize.unwrap_or(self.sanitize);
        let guard = self.health.is_enabled();
        let results: Vec<Result<(R, BlockOutput), KernelError>> = (0..cfg.grid)
            .into_par_iter()
            .map(|b| {
                let mut ctx = BlockCtx::new(&self.device, &cfg, sanitize, guard);
                let r = f(b, &mut ctx)?;
                Ok((r, ctx.into_parts()))
            })
            .collect();
        let mut outs = Vec::with_capacity(cfg.grid);
        let mut counters = Vec::with_capacity(cfg.grid);
        for r in results {
            let (out, c) = r?;
            outs.push(out);
            counters.push(Ok(c));
        }
        let stats = self.finish(cfg, counters)?;
        Ok((outs, stats))
    }

    fn check_cfg(&self, cfg: &KernelConfig) {
        assert!(
            cfg.smem_bytes_per_block <= self.device.smem_per_block_bytes,
            "kernel '{}' requests {} B of shared memory; device '{}' provides {} B per block",
            cfg.label,
            cfg.smem_bytes_per_block,
            self.device.name,
            self.device.smem_per_block_bytes,
        );
        assert!(
            cfg.threads_per_block > 0,
            "kernel '{}' has zero threads",
            cfg.label
        );
    }

    /// Converts per-block counters into simulated time and records the
    /// launch; sanitized blocks additionally report their hazard findings.
    fn finish(
        &self,
        cfg: KernelConfig,
        results: Vec<Result<BlockOutput, KernelError>>,
    ) -> Result<LaunchStats, KernelError> {
        let mut blocks = Vec::with_capacity(results.len());
        let mut outcomes = Vec::with_capacity(results.len());
        let mut nonfinite = None;
        for (b, r) in results.into_iter().enumerate() {
            let (c, o, nf) = r?;
            blocks.push(c);
            outcomes.push(o);
            if nonfinite.is_none() {
                nonfinite = nf.map(|detail| (b, detail));
            }
        }
        self.report_sanitize_outcomes(&cfg, outcomes);
        let d = &self.device;
        let slots = d.concurrent_blocks(cfg.threads_per_block, cfg.smem_bytes_per_block);
        let concurrent = cfg.grid.min(slots).max(1);
        // Per-block resource shares while `concurrent` blocks are resident.
        let bw_share = d.gm_bytes_per_cycle / concurrent as f64;
        let blocks_per_sm = concurrent.div_ceil(d.num_sms).max(1);
        let mut lanes_per_block = d.fp64_lanes_per_sm as f64 / blocks_per_sm as f64;
        if cfg.uses_tensor_cores {
            lanes_per_block *= d.tensor_gemm_speedup;
        }
        let lanes_per_block = lanes_per_block.max(1.0);

        // Duration of each block: roofline max of span, FLOP throughput
        // limit, and its global-memory bandwidth share.
        let durations: Vec<f64> = blocks
            .iter()
            .map(|c| {
                let compute_span = if cfg.uses_tensor_cores {
                    c.span_cycles / d.tensor_gemm_speedup
                } else {
                    c.span_cycles
                };
                let flop_limit = c.flops as f64 / (2.0 * lanes_per_block);
                let mem = c.gm_bytes() as f64 / bw_share;
                compute_span.max(flop_limit).max(mem) + BLOCK_OVERHEAD_CYCLES
            })
            .collect();

        // List-schedule the blocks onto the resident slots. The traced path
        // uses the placement-returning variant (same makespan, see tests).
        let placements = if self.trace.is_enabled() {
            let (makespan, placements) = list_schedule_placements(&durations, concurrent);
            Some((makespan, placements))
        } else {
            None
        };
        let full_cycles = match &placements {
            Some((makespan, _)) => *makespan,
            None => list_schedule(&durations, concurrent),
        };
        let (overhead_seconds, ride) = self.charge_launch(&cfg, slots);
        // Blocks riding the previous same-shape node's resident wave add no
        // makespan: only the remainder opens new waves. (`ride > 0` only
        // inside a fused scope, so the serial path is untouched.)
        let kernel_cycles = if ride == 0 {
            full_cycles
        } else {
            list_schedule(&durations[ride.min(durations.len())..], concurrent)
        };
        let kernel_seconds = kernel_cycles / (d.clock_ghz * 1e9);
        if ride > 0 {
            self.graph
                .lock()
                .add_overlap_saved((full_cycles - kernel_cycles) / (d.clock_ghz * 1e9));
        }

        let mut totals = BlockCounters::default();
        for c in &blocks {
            totals.merge(c);
        }
        let stats = LaunchStats {
            grid: cfg.grid,
            threads_per_block: cfg.threads_per_block,
            smem_bytes_per_block: cfg.smem_bytes_per_block,
            totals,
            kernel_seconds,
            overhead_seconds,
            occupancy: d.occupancy(cfg.grid, cfg.threads_per_block, cfg.smem_bytes_per_block),
        };
        if let Some((_, placements)) = placements {
            self.trace_launch(&cfg, &stats, &placements);
        }
        self.timeline.lock().record(&stats);
        self.profiler.lock().record(cfg.label, &stats);
        if self.metrics.is_enabled() {
            self.record_metrics(cfg.label, &stats);
        }
        if self.health.is_enabled() {
            let now = self.timeline.lock().seconds;
            self.health
                .kernel_launch(cfg.label, cfg.grid, stats.kernel_seconds, now);
            if let Some((block, detail)) = nonfinite {
                self.health.nonfinite(cfg.label, block, &detail, now);
            }
        }
        Ok(stats)
    }

    /// Mirrors one launch's [`LaunchStats`] — the *same* object the timeline
    /// and profiler record — into the metrics registry, keyed by kernel
    /// label. Only called when the sink is enabled; recording never touches
    /// the timing model, so metrics-off runs stay bit-identical.
    fn record_metrics(&self, label: &str, stats: &LaunchStats) {
        let m = &self.metrics;
        m.counter_add(label, None, "launches", 1.0);
        m.counter_add(label, None, "blocks", stats.grid as f64);
        m.counter_add(label, None, "flops", stats.totals.flops as f64);
        m.counter_add(
            label,
            None,
            "gm_load_bytes",
            stats.totals.gm_load_bytes as f64,
        );
        m.counter_add(
            label,
            None,
            "gm_store_bytes",
            stats.totals.gm_store_bytes as f64,
        );
        m.counter_add(
            label,
            None,
            "gm_transactions",
            stats.totals.gm_transactions as f64,
        );
        m.counter_add(
            label,
            None,
            "smem_traffic_bytes",
            stats.totals.smem_traffic_bytes as f64,
        );
        m.counter_add(label, None, "kernel_seconds", stats.kernel_seconds);
        m.counter_add(label, None, "overhead_seconds", stats.overhead_seconds);
        // Time-weighted occupancy accumulator: reports divide by the kernel's
        // total seconds to recover the profiler's mean occupancy.
        m.counter_add(
            label,
            None,
            "occ_seconds",
            stats.occupancy * stats.seconds(),
        );
        m.observe(
            label,
            None,
            "occupancy",
            &OCCUPANCY_BUCKETS,
            stats.occupancy,
        );
        // Device roofline constants as gauges, so a snapshot alone suffices
        // to derive AI / ceiling attribution (Eqs. 8–10) offline.
        let d = &self.device;
        m.gauge_set("device", None, "peak_fp64_flops", d.peak_fp64_flops());
        m.gauge_set("device", None, "gm_bandwidth_bytes_per_s", d.gm_bandwidth());
        m.gauge_set(
            "device",
            None,
            "gm_transaction_bytes",
            d.gm_transaction_bytes as f64,
        );
    }

    /// Launch accounting for one kernel: the full per-call driver cost (and
    /// no riding blocks) on the serial path, or the graph-node accounting of
    /// [`LaunchGraph`] while a fused scope is open. Returns
    /// `(overhead_seconds, ride_blocks)`; riding blocks occupy slots the
    /// previous same-shape node left free and add no makespan. Counters and
    /// numerics are never affected — only the timing account changes.
    fn charge_launch(&self, cfg: &KernelConfig, slots: usize) -> (f64, usize) {
        let d = &self.device;
        let full = d.launch_overhead_us * 1e-6;
        let mut g = self.graph.lock();
        if !g.capturing() {
            return (full, 0);
        }
        g.charge_node(
            (cfg.threads_per_block, cfg.smem_bytes_per_block),
            cfg.grid,
            slots,
            full,
            d.graph_node_overhead_us * 1e-6,
        )
    }

    /// Opens a fused launch scope: kernels launched while the returned
    /// [`LaunchGraph`] is alive are recorded as nodes of one graph and pay
    /// the full launch overhead once (first node) plus a small per-node
    /// dispatch cost. Back-to-back same-shape launches coalesce onto the
    /// already-resident SM slots: they pay no dispatch cost and their
    /// leading blocks fill the free slots of the previous node's last wave,
    /// adding no makespan (see [`crate::graph`]). Counters, numerics and
    /// sanitizer behaviour stay bit-identical to serial launches. Scopes
    /// nest; an inner scope joins the enclosing graph. Dropping the scope
    /// replays (closes) the graph and, when tracing, emits a `launch-graph`
    /// instant and counter samples.
    pub fn launch_graph(&self, label: &'static str) -> LaunchGraph<'_> {
        self.graph.lock().begin();
        LaunchGraph { gpu: self, label }
    }

    /// Closes one fused scope (called by [`LaunchGraph::drop`]).
    pub(crate) fn end_launch_graph(&self, label: &'static str) {
        let finished = self.graph.lock().end();
        if let Some((nodes, coalesced)) = finished {
            if self.metrics.is_enabled() {
                // Per-graph deltas (cumulative stats minus what was already
                // reported), so registry counters sum correctly per run even
                // though `GraphStats` itself stays Gpu-cumulative.
                let d = self.graph.lock().take_unreported();
                let m = &self.metrics;
                m.counter_add("launch-graph", None, "graphs", d.graphs as f64);
                m.counter_add("launch-graph", None, "nodes", d.nodes as f64);
                m.counter_add("launch-graph", None, "coalesced", d.coalesced as f64);
                m.counter_add("launch-graph", None, "ride_blocks", d.ride_blocks as f64);
                m.counter_add(
                    "launch-graph",
                    None,
                    "overhead_saved_seconds",
                    d.overhead_saved_seconds,
                );
                m.counter_add(
                    "launch-graph",
                    None,
                    "overlap_saved_seconds",
                    d.overlap_saved_seconds,
                );
            }
            if self.trace.is_enabled() {
                let now = self.timeline.lock().seconds;
                let stats = self.graph.lock().stats();
                self.trace.instant(
                    self.trace_pid,
                    "launch-graph",
                    label,
                    now,
                    vec![
                        ("nodes", nodes.into()),
                        ("coalesced", coalesced.into()),
                        ("overhead_saved_s", stats.overhead_saved_seconds.into()),
                        ("overlap_saved_s", stats.overlap_saved_seconds.into()),
                    ],
                );
                self.trace.counter(
                    self.trace_pid,
                    "launch-graph",
                    "graphs",
                    now,
                    stats.graphs as f64,
                );
            }
        }
    }

    /// Cumulative launch-graph statistics for this GPU.
    pub fn graph_stats(&self) -> GraphStats {
        self.graph.lock().stats()
    }

    /// Emits the launch's trace events: one kernel span, per-SM-slot block
    /// placements (first [`MAX_TRACED_SLOTS`] slots), and counter samples.
    /// Called before the timeline records the launch, so the snapshot of
    /// `timeline.seconds` is the launch's start time.
    // wsvd-lint: allow(sink-guard) — the caller gates on trace.is_enabled()
    // when computing `placements` and only invokes this with Some(_).
    fn trace_launch(&self, cfg: &KernelConfig, stats: &LaunchStats, placements: &[BlockPlacement]) {
        let pid = self.trace_pid;
        let t0 = self.timeline.lock().seconds;
        let kernel_start = t0 + stats.overhead_seconds;
        self.trace.span(
            pid,
            "kernels",
            cfg.label,
            kernel_start,
            stats.kernel_seconds,
            vec![
                ("grid", cfg.grid.into()),
                ("threads_per_block", cfg.threads_per_block.into()),
                ("smem_bytes_per_block", cfg.smem_bytes_per_block.into()),
                ("occupancy", stats.occupancy.into()),
                ("flops", stats.totals.flops.into()),
                ("gm_bytes", stats.totals.gm_bytes().into()),
                ("smem_traffic_bytes", stats.totals.smem_traffic_bytes.into()),
                ("launch_overhead_s", stats.overhead_seconds.into()),
            ],
        );
        let cycle_seconds = 1.0 / (self.device.clock_ghz * 1e9);
        for p in placements {
            if p.slot >= MAX_TRACED_SLOTS {
                continue;
            }
            let track = format!("sm-slot {:02}", p.slot);
            self.trace.span(
                pid,
                &track,
                cfg.label,
                kernel_start + p.start * cycle_seconds,
                (p.end - p.start) * cycle_seconds,
                vec![("block", p.block.into())],
            );
        }
        self.trace
            .counter(pid, "occupancy", "occupancy", kernel_start, stats.occupancy);
        self.trace.counter(
            pid,
            "gm_bytes",
            "gm_bytes",
            kernel_start,
            stats.totals.gm_bytes() as f64,
        );
        self.trace.counter(
            pid,
            "smem_bytes_per_block",
            "smem_bytes_per_block",
            kernel_start,
            cfg.smem_bytes_per_block as f64,
        );
    }

    /// Folds the blocks' sanitizer findings into the GPU-wide report,
    /// attributes each violation to its kernel and block, bumps the
    /// process-wide violation count, and mirrors everything onto the
    /// `sanitizer` trace track as structured instants. No-op for unsanitized
    /// launches.
    fn report_sanitize_outcomes(
        &self,
        cfg: &KernelConfig,
        outcomes: Vec<Option<BlockSanitizeOutcome>>,
    ) {
        if outcomes.iter().all(|o| o.is_none()) {
            return;
        }
        // The timeline has not recorded this launch yet, so its `seconds` is
        // the launch's start time (same convention as `trace_launch`).
        let ts = self.timeline.lock().seconds;
        let pid = self.trace_pid;
        let mut launch_stats = crate::sanitize::SanitizeStats::default();
        let mut new_violations = Vec::new();
        for (block, outcome) in outcomes.into_iter().enumerate() {
            let Some(mut o) = outcome else { continue };
            launch_stats.merge(&o.stats);
            for v in o.violations.iter_mut() {
                v.kernel = cfg.label.to_string();
                v.block = block;
            }
            new_violations.append(&mut o.violations);
        }
        if self.trace.is_enabled() {
            for v in &new_violations {
                let mut args: Vec<(&'static str, wsvd_trace::ArgValue)> = vec![
                    ("kernel", cfg.label.into()),
                    ("block", v.block.into()),
                    ("epoch", v.epoch.into()),
                    ("lane_a", v.lanes.0.into()),
                    ("lane_b", v.lanes.1.into()),
                ];
                if let Some(buf) = v.buf {
                    args.push(("buf", buf.into()));
                }
                args.push(("detail", v.detail.clone().into()));
                self.trace
                    .instant(pid, "sanitizer", &v.kind.to_string(), ts, args);
            }
            self.trace.instant(
                pid,
                "sanitizer",
                "launch-checked",
                ts,
                vec![
                    ("kernel", cfg.label.into()),
                    ("blocks_checked", launch_stats.blocks_checked.into()),
                    ("epochs", launch_stats.epochs.into()),
                    ("accesses", launch_stats.accesses.into()),
                    ("gm_ops", launch_stats.gm_ops.into()),
                    ("violations", new_violations.len().into()),
                ],
            );
        }
        if !new_violations.is_empty() {
            bump_global_violations(new_violations.len() as u64);
        }
        let mut rep = self.sanitizer.lock();
        rep.stats.merge(&launch_stats);
        rep.violations.extend(new_violations);
    }
}

/// Longest-processing-slot list scheduling: assigns each duration to the
/// earliest-free of `slots` execution slots; returns the makespan.
fn list_schedule(durations: &[f64], slots: usize) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let slots = slots.max(1);
    if slots >= durations.len() {
        return durations.iter().fold(0.0f64, |m, &d| m.max(d));
    }
    // Min-heap of slot end times, keyed by ordered bits of the f64.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..slots).map(|i| Reverse((0u64, i))).collect();
    let mut ends = vec![0.0f64; slots];
    for &d in durations {
        let Reverse((_, slot)) = heap.pop().expect("heap never empty");
        ends[slot] += d;
        heap.push(Reverse((ends[slot].to_bits(), slot)));
    }
    ends.iter().fold(0.0f64, |m, &e| m.max(e))
}

/// Where one block landed in the list schedule (times in cycles, relative
/// to kernel start).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockPlacement {
    /// Grid index of the block.
    pub block: usize,
    /// Execution slot the block ran on.
    pub slot: usize,
    /// Cycle at which the block started.
    pub start: f64,
    /// Cycle at which the block finished.
    pub end: f64,
}

/// The same schedule as [`list_schedule`], additionally returning each
/// block's `(slot, start, end)` placement for trace export. Kept separate so
/// the untraced hot path allocates nothing extra; an invariant test pins the
/// two to the same makespan.
fn list_schedule_placements(durations: &[f64], slots: usize) -> (f64, Vec<BlockPlacement>) {
    if durations.is_empty() {
        return (0.0, Vec::new());
    }
    let slots = slots.max(1);
    if slots >= durations.len() {
        let placements: Vec<BlockPlacement> = durations
            .iter()
            .enumerate()
            .map(|(b, &d)| BlockPlacement {
                block: b,
                slot: b,
                start: 0.0,
                end: d,
            })
            .collect();
        let makespan = durations.iter().fold(0.0f64, |m, &d| m.max(d));
        return (makespan, placements);
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..slots).map(|i| Reverse((0u64, i))).collect();
    let mut ends = vec![0.0f64; slots];
    let mut placements = Vec::with_capacity(durations.len());
    for (b, &d) in durations.iter().enumerate() {
        let Reverse((_, slot)) = heap.pop().expect("heap never empty");
        let start = ends[slot];
        ends[slot] += d;
        placements.push(BlockPlacement {
            block: b,
            slot,
            start,
            end: ends[slot],
        });
        heap.push(Reverse((ends[slot].to_bits(), slot)));
    }
    let makespan = ends.iter().fold(0.0f64, |m, &e| m.max(e));
    (makespan, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::V100;

    #[test]
    fn list_schedule_fewer_jobs_than_slots() {
        assert_eq!(list_schedule(&[3.0, 1.0, 2.0], 8), 3.0);
    }

    #[test]
    fn list_schedule_serializes_on_one_slot() {
        assert_eq!(list_schedule(&[3.0, 1.0, 2.0], 1), 6.0);
    }

    #[test]
    fn list_schedule_balances_two_slots() {
        // 4,3,3 on 2 slots -> {4, 3+3} -> 6 or {4+3, 3}=7 depending on order;
        // earliest-free: 4->s0, 3->s1, 3->s1(end 3)->6. Makespan 6.
        assert_eq!(list_schedule(&[4.0, 3.0, 3.0], 2), 6.0);
    }

    #[test]
    fn placement_schedule_matches_plain_makespan() {
        // Pseudo-random durations over several slot counts: both scheduler
        // variants must agree exactly, and placements must tile each slot.
        let durations: Vec<f64> = (0..97)
            .map(|k| 1.0 + ((k * 2654435761u64 as usize) % 97) as f64 / 7.0)
            .collect();
        for slots in [1, 2, 7, 32, 96, 200] {
            let plain = list_schedule(&durations, slots);
            let (makespan, placements) = list_schedule_placements(&durations, slots);
            assert_eq!(plain.to_bits(), makespan.to_bits(), "slots={slots}");
            assert_eq!(placements.len(), durations.len());
            // Within a slot, blocks must be back-to-back and non-overlapping.
            let mut per_slot: std::collections::BTreeMap<usize, Vec<&BlockPlacement>> =
                Default::default();
            for p in &placements {
                assert!(p.end <= makespan + 1e-9);
                per_slot.entry(p.slot).or_default().push(p);
            }
            for (_, ps) in per_slot {
                let mut t = 0.0;
                for p in ps {
                    assert!(p.start >= t - 1e-12);
                    assert!(p.end >= p.start);
                    t = p.end;
                }
            }
        }
    }

    #[test]
    fn traced_launch_emits_kernel_span_and_counters() {
        let sink = wsvd_trace::TraceSink::enabled();
        let gpu = Gpu::with_trace(V100, sink.clone());
        let mut data = vec![0.0f64; 4];
        let cfg = KernelConfig::new(4, 64, 1024, "traced-kernel");
        let stats = gpu
            .launch_over(cfg, &mut data, |_, _, ctx| {
                ctx.par_step(64, 2);
                Ok(())
            })
            .unwrap();
        let events = sink.events();
        let kernel_spans: Vec<_> = events
            .iter()
            .filter(|e| e.track == "kernels" && e.name == "traced-kernel")
            .collect();
        assert_eq!(kernel_spans.len(), 1);
        match kernel_spans[0].kind {
            wsvd_trace::EventKind::Span { start, dur } => {
                assert!((start - stats.overhead_seconds).abs() < 1e-15);
                assert!((dur - stats.kernel_seconds).abs() < 1e-15);
            }
            ref other => panic!("expected span, got {other:?}"),
        }
        // One placement span per block (4 blocks, all within slot cap).
        let slot_spans = events
            .iter()
            .filter(|e| e.track.starts_with("sm-slot"))
            .count();
        assert_eq!(slot_spans, 4);
        // Counter samples present.
        assert!(events.iter().any(|e| e.name == "occupancy"));
        assert!(events.iter().any(|e| e.name == "gm_bytes"));
        assert_eq!(sink.processes(), vec![(1, "Tesla V100".to_string())]);
    }

    #[test]
    fn untraced_launch_emits_nothing() {
        let gpu = Gpu::with_trace(V100, wsvd_trace::TraceSink::disabled());
        let mut data = vec![0.0f64; 2];
        let cfg = KernelConfig::new(2, 64, 1024, "untraced");
        gpu.launch_over(cfg, &mut data, |_, _, ctx| {
            ctx.par_step(8, 1);
            Ok(())
        })
        .unwrap();
        assert!(!gpu.trace().is_enabled());
        assert!(gpu.trace().events().is_empty());
        assert_eq!(gpu.trace_pid(), 0);
    }

    #[test]
    fn launch_over_runs_every_block_and_counts() {
        let gpu = Gpu::new(V100);
        let mut data = vec![0.0f64; 16];
        let cfg = KernelConfig::new(16, 64, 1024, "touch");
        let stats = gpu
            .launch_over(cfg, &mut data, |b, item, ctx| {
                *item = b as f64;
                ctx.par_step(100, 2);
                Ok(())
            })
            .unwrap();
        assert_eq!(stats.grid, 16);
        assert_eq!(stats.totals.flops, 16 * 200);
        assert!(stats.kernel_seconds > 0.0);
        for (b, x) in data.iter().enumerate() {
            assert_eq!(*x, b as f64);
        }
        assert_eq!(gpu.timeline().launches, 1);
    }

    #[test]
    fn smem_overflow_propagates() {
        let gpu = Gpu::new(V100);
        let mut data = vec![0u8; 1];
        let cfg = KernelConfig::new(1, 32, 256, "overflow");
        let err = gpu
            .launch_over(cfg, &mut data, |_, _, ctx| {
                let _ = ctx.smem().alloc(1000)?; // 8000 B > 256 B
                Ok(())
            })
            .unwrap_err();
        matches!(err, KernelError::Smem(_));
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn requesting_more_than_static_capacity_panics() {
        let gpu = Gpu::new(V100);
        let cfg = KernelConfig::new(1, 32, 64 * 1024, "too-big");
        let _ = gpu.launch_collect(cfg, |_, _| Ok(()));
    }

    #[test]
    fn more_blocks_improves_throughput_until_saturation() {
        // Same per-block work; 10 blocks vs 1000 blocks. Time per block must
        // shrink (higher TLP) as long as slots remain.
        let per_block_time = |grid: usize| {
            let gpu = Gpu::new(V100);
            let cfg = KernelConfig::new(grid, 256, 8 * 1024, "tlp");
            let (_, stats) = gpu
                .launch_collect(cfg, |_, ctx| {
                    ctx.par_step(4096, 4);
                    Ok(())
                })
                .unwrap();
            stats.kernel_seconds / grid as f64
        };
        assert!(per_block_time(1000) < per_block_time(10) * 0.9);
    }

    #[test]
    fn gm_traffic_increases_time() {
        let gpu = Gpu::new(V100);
        let cfg = KernelConfig::new(512, 256, 1024, "mem");
        let (_, light) = gpu
            .launch_collect(cfg, |_, ctx| {
                ctx.par_step(1000, 2);
                Ok(())
            })
            .unwrap();
        let (_, heavy) = gpu
            .launch_collect(cfg, |_, ctx| {
                ctx.par_step(1000, 2);
                ctx.count_gm_load(100_000);
                ctx.count_gm_store(100_000);
                Ok(())
            })
            .unwrap();
        assert!(heavy.kernel_seconds > light.kernel_seconds);
        assert!(heavy.totals.gm_transactions > 0);
    }

    #[test]
    fn tensor_cores_speed_up_flops_bound_kernels() {
        let run = |dev: crate::device::DeviceSpec, tensor: bool| {
            let gpu = Gpu::new(dev);
            let mut cfg = KernelConfig::new(256, 256, 1024, "gemm");
            cfg.uses_tensor_cores = tensor;
            let (_, s) = gpu
                .launch_collect(cfg, |_, ctx| {
                    ctx.par_step(100_000, 2);
                    Ok(())
                })
                .unwrap();
            s.kernel_seconds
        };
        let a100_plain = run(crate::device::A100, false);
        let a100_tensor = run(crate::device::A100, true);
        assert!(a100_tensor < a100_plain);
    }

    #[test]
    fn team_step_penalizes_small_teams_with_many_items() {
        // One team of 32 processing 320 items: 10 waves * ops.
        let gpu = Gpu::new(V100);
        let cfg = KernelConfig::new(1, 32, 1024, "teams");
        let (_, one_team) = gpu
            .launch_collect(cfg, |_, ctx| {
                ctx.team_step(1, 32, 320, 1);
                Ok(())
            })
            .unwrap();
        // 8 teams of 4 threads, 40 items each: 2 concurrent waves of teams? threads=32
        // concurrent_teams = 8, so 1 wave of ceil(40/4)=10 cycles.
        let (_, many_teams) = gpu
            .launch_collect(cfg, |_, ctx| {
                ctx.team_step(8, 4, 40, 1);
                Ok(())
            })
            .unwrap();
        assert_eq!(one_team.totals.flops, many_teams.totals.flops);
        // 8 small teams in parallel have equal span here (10 waves each way).
        assert!((one_team.totals.span_cycles - many_teams.totals.span_cycles).abs() < 1.0);
    }

    #[test]
    fn sanitized_launch_reports_race_and_traces_it() {
        let sink = wsvd_trace::TraceSink::enabled();
        let mut gpu = Gpu::with_trace(V100, sink.clone());
        gpu.sanitize = crate::sanitize::SanitizeMode::Full;
        let cfg = KernelConfig::new(2, 64, 1024, "racy");
        let (_, _stats) = gpu
            .launch_collect(cfg, |_, ctx| {
                let buf = ctx.smem().alloc(32)?;
                ctx.smem_write(0, &buf, 0, 16);
                ctx.smem_read(1, &buf, 8, 4); // overlaps lane 0's write
                Ok(())
            })
            .unwrap();
        let rep = gpu.sanitizer_report();
        assert_eq!(rep.violations.len(), 2); // one per block
        assert_eq!(
            rep.violations[0].kind,
            crate::sanitize::HazardKind::ReadWrite
        );
        assert_eq!(rep.violations[0].kernel, "racy");
        assert_eq!(rep.violations[1].block, 1);
        assert_eq!(rep.stats.blocks_checked, 2);
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| e.track == "sanitizer" && e.name == "read-write race"));
        assert!(events
            .iter()
            .any(|e| e.track == "sanitizer" && e.name == "launch-checked"));
    }

    #[test]
    fn barrier_clears_hazards_and_leak_is_flagged() {
        let gpu = Gpu::with_sanitize(V100, crate::sanitize::SanitizeMode::Full);
        let cfg = KernelConfig::new(1, 64, 1024, "barriered");
        gpu.launch_collect(cfg, |_, ctx| {
            let buf = ctx.smem().alloc(32)?;
            ctx.smem_write(0, &buf, 0, 16);
            ctx.sync_threads();
            ctx.smem_read(1, &buf, 8, 4); // ordered after the barrier
            std::mem::forget(buf); // planted leak: budget never released
            Ok(())
        })
        .unwrap();
        let rep = gpu.sanitizer_report();
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(
            rep.violations[0].kind,
            crate::sanitize::HazardKind::SmemLeak
        );
        assert_eq!(rep.stats.epochs, 1);
    }

    #[test]
    fn kernel_config_override_beats_gpu_mode() {
        let gpu = Gpu::with_sanitize(V100, crate::sanitize::SanitizeMode::Off);
        let mut cfg = KernelConfig::new(1, 64, 1024, "forced-on");
        cfg.sanitize = Some(crate::sanitize::SanitizeMode::Full);
        gpu.launch_collect(cfg, |_, ctx| {
            let buf = ctx.smem().alloc(8)?;
            ctx.smem_write(0, &buf, 0, 8);
            ctx.smem_write(1, &buf, 0, 8);
            Ok(())
        })
        .unwrap();
        assert!(!gpu.sanitize_enabled());
        assert_eq!(gpu.sanitizer_report().violations.len(), 1);
    }

    #[test]
    fn sanitizer_off_is_inert_and_costless() {
        let gpu = Gpu::new(V100);
        let cfg = KernelConfig::new(1, 64, 1024, "inert");
        let (_, stats) = gpu
            .launch_collect(cfg, |_, ctx| {
                assert!(!ctx.sanitizing());
                let buf = ctx.smem().alloc(8)?;
                ctx.smem_write(0, &buf, 0, 8);
                ctx.smem_write(1, &buf, 0, 8); // would race if checked
                ctx.sync_threads();
                ctx.lane_sync(0);
                Ok(())
            })
            .unwrap();
        assert!(gpu.sanitizer_report().is_clean());
        assert_eq!(gpu.sanitizer_report().stats.blocks_checked, 0);
        // The sanitized run of the *same* kernel produces identical counters
        // and timing: instrumentation must never perturb the model.
        let san = Gpu::with_sanitize(V100, crate::sanitize::SanitizeMode::Full);
        let (_, san_stats) = san
            .launch_collect(cfg, |_, ctx| {
                let buf = ctx.smem().alloc(8)?;
                ctx.smem_write(0, &buf, 0, 8);
                ctx.smem_write(1, &buf, 0, 8);
                ctx.sync_threads();
                ctx.lane_sync(0);
                Ok(())
            })
            .unwrap();
        assert_eq!(stats.totals, san_stats.totals);
        assert_eq!(
            stats.kernel_seconds.to_bits(),
            san_stats.kernel_seconds.to_bits()
        );
    }

    #[test]
    fn finite_guard_fires_one_nonfinite_incident() {
        let health = wsvd_health::HealthSink::enabled();
        health.set_context("nan-test", 17);
        let mut gpu = Gpu::new(V100);
        gpu.set_health(health.clone());
        let cfg = KernelConfig::new(4, 64, 1024, "poisoned");
        let mut data: Vec<Vec<f64>> = (0..4).map(|_| vec![1.0; 8]).collect();
        data[2][5] = f64::NAN; // plant one NaN in block 2
        gpu.launch_over(cfg, &mut data, |_, item, ctx| {
            ctx.par_step(8, 1);
            ctx.guard_finite(item);
            Ok(())
        })
        .unwrap();
        let incidents = health.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, "non-finite");
        assert!(incidents[0].detail.contains("'poisoned', block 2"));
        assert!(incidents[0].detail.contains("element 5"));
        assert_eq!(incidents[0].seed, 17);
        // The launch itself landed in the flight tail too.
        assert!(health.tail().iter().any(|e| matches!(
            &e.kind,
            wsvd_health::FlightKind::KernelLaunch { label, .. } if label == "poisoned"
        )));
    }

    #[test]
    fn health_off_guard_is_inert_and_timing_identical() {
        let run = |with_health: bool| {
            let mut gpu = Gpu::new(V100);
            if with_health {
                gpu.set_health(wsvd_health::HealthSink::enabled());
            }
            let cfg = KernelConfig::new(8, 64, 1024, "guarded");
            let mut data: Vec<Vec<f64>> = (0..8).map(|_| vec![1.0; 64]).collect();
            gpu.launch_over(cfg, &mut data, |_, item, ctx| {
                ctx.par_step(64, 2);
                ctx.guard_finite(item);
                Ok(())
            })
            .unwrap();
            (gpu.elapsed_seconds(), gpu.timeline().totals)
        };
        let (t_off, c_off) = run(false);
        let (t_on, c_on) = run(true);
        assert_eq!(
            t_off.to_bits(),
            t_on.to_bits(),
            "health must not perturb time"
        );
        assert_eq!(c_off, c_on);
    }

    #[test]
    fn serial_loop_of_launches_pays_overhead() {
        let gpu = Gpu::new(V100);
        for _ in 0..10 {
            let cfg = KernelConfig::new(1, 32, 256, "tiny");
            gpu.launch_collect(cfg, |_, ctx| {
                ctx.serial_step(10);
                Ok(())
            })
            .unwrap();
        }
        let t = gpu.timeline();
        assert_eq!(t.launches, 10);
        // Overhead dominates: at least 10 * 5 µs.
        assert!(t.seconds >= 50e-6);
    }

    // Ten tiny launches, optionally inside one fused scope, with alternating
    // shapes so coalescing triggers on the repeated pairs.
    fn ten_launches(gpu: &Gpu, fused: bool) -> Vec<LaunchStats> {
        let scope = fused.then(|| gpu.launch_graph("ten"));
        let mut all = Vec::new();
        for k in 0..10 {
            let threads = if k % 4 < 2 { 32 } else { 64 };
            let cfg = KernelConfig::new(1, threads, 256, "tiny");
            let (_, stats) = gpu
                .launch_collect(cfg, |_, ctx| {
                    ctx.serial_step(10 + k as u64);
                    Ok(())
                })
                .unwrap();
            all.push(stats);
        }
        drop(scope);
        all
    }

    #[test]
    fn fused_scope_amortizes_overhead_and_overlaps_coalesced_launches() {
        let serial_gpu = Gpu::new(V100);
        let fused_gpu = Gpu::new(V100);
        let serial = ten_launches(&serial_gpu, false);
        let fused = ten_launches(&fused_gpu, true);
        for (k, (s, f)) in serial.iter().zip(&fused).enumerate() {
            assert_eq!(s.totals, f.totals, "counters are schedule-independent");
            assert_eq!(s.occupancy.to_bits(), f.occupancy.to_bits());
            // Shape pattern 32,32,64,64,…: odd launches coalesce with their
            // predecessor; their single block rides the resident wave, so
            // they add neither dispatch cost nor makespan. Non-coalesced
            // launches keep bit-identical kernel time.
            if k % 2 == 1 {
                assert_eq!(f.kernel_seconds, 0.0, "riding block adds no time");
                assert_eq!(f.overhead_seconds, 0.0);
            } else {
                assert_eq!(s.kernel_seconds.to_bits(), f.kernel_seconds.to_bits());
            }
        }
        let st = serial_gpu.timeline();
        let ft = fused_gpu.timeline();
        assert_eq!(st.launches, ft.launches);
        assert_eq!(
            st.totals, ft.totals,
            "fusion must not perturb the counter totals"
        );
        assert!(
            ft.kernel_seconds < st.kernel_seconds,
            "riding saves makespan"
        );
        // Serial: 10 full launches. Fused: 1 full + per-node costs, with the
        // shape pattern 32,32,64,64,... coalescing every second launch.
        assert!((st.overhead_seconds - 50e-6).abs() < 1e-12);
        let full = V100.launch_overhead_us * 1e-6;
        let node = V100.graph_node_overhead_us * 1e-6;
        let want_fused = full + 4.0 * node; // 5 coalesced, 4 charged nodes
        assert!(
            (ft.overhead_seconds - want_fused).abs() < 1e-12,
            "fused overhead {} vs expected {}",
            ft.overhead_seconds,
            want_fused
        );
        assert!(ft.seconds < st.seconds);

        let g = fused_gpu.graph_stats();
        assert_eq!(g.graphs, 1);
        assert_eq!(g.nodes, 10);
        assert_eq!(g.coalesced, 5);
        assert_eq!(g.ride_blocks, 5, "each coalesced single-block launch rides");
        assert!((g.overhead_saved_seconds - (st.overhead_seconds - want_fused)).abs() < 1e-12);
        assert!((g.overlap_saved_seconds - (st.kernel_seconds - ft.kernel_seconds)).abs() < 1e-15);
        assert_eq!(serial_gpu.graph_stats(), GraphStats::default());
    }

    #[test]
    fn nested_fused_scopes_share_one_graph_launch() {
        let gpu = Gpu::new(V100);
        let outer = gpu.launch_graph("outer");
        let run = |label: &'static str| {
            let cfg = KernelConfig::new(1, 32, 256, label);
            gpu.launch_collect(cfg, |_, ctx| {
                ctx.serial_step(5);
                Ok(())
            })
            .unwrap()
            .1
        };
        let first = run("a");
        {
            let _inner = gpu.launch_graph("inner");
            let nested = run("b");
            // Same shape as the previous node: coalesced even across the
            // nested-scope boundary (one graph).
            assert_eq!(nested.overhead_seconds, 0.0);
        }
        let after = run("c");
        assert_eq!(after.overhead_seconds, 0.0, "inner drop must not split");
        assert!((first.overhead_seconds - V100.launch_overhead_us * 1e-6).abs() < 1e-18);
        drop(outer);
        assert_eq!(gpu.graph_stats().graphs, 1);
        assert_eq!(gpu.graph_stats().nodes, 3);

        // After the scope closes, launches pay full serial overhead again.
        let serial = run("d");
        assert!((serial.overhead_seconds - V100.launch_overhead_us * 1e-6).abs() < 1e-18);
        assert_eq!(gpu.graph_stats().nodes, 3);
    }

    #[test]
    fn metered_launch_mirrors_stats_into_registry() {
        let sink = wsvd_metrics::MetricsSink::enabled();
        sink.set_experiment("unit");
        let mut gpu = Gpu::new(V100);
        gpu.set_metrics(sink.clone());
        let cfg = KernelConfig::new(4, 64, 1024, "metered");
        let (_, stats) = gpu
            .launch_collect(cfg, |_, ctx| {
                ctx.par_step(64, 2);
                ctx.count_gm_load(128);
                Ok(())
            })
            .unwrap();
        let snap = sink.snapshot();
        let c = |name: &str| snap.counter("unit", "metered", None, name);
        assert_eq!(c("launches"), 1.0);
        assert_eq!(c("blocks"), 4.0);
        assert_eq!(c("flops"), stats.totals.flops as f64);
        assert_eq!(c("gm_load_bytes"), stats.totals.gm_load_bytes as f64);
        assert_eq!(c("gm_transactions"), stats.totals.gm_transactions as f64);
        assert_eq!(
            c("kernel_seconds").to_bits(),
            stats.kernel_seconds.to_bits()
        );
        assert_eq!(
            c("overhead_seconds").to_bits(),
            stats.overhead_seconds.to_bits()
        );
        let h = snap
            .histogram("unit", "metered", None, "occupancy")
            .expect("occupancy histogram");
        assert_eq!(h.total, 1);
        assert_eq!(
            snap.gauge("unit", "device", None, "peak_fp64_flops"),
            Some(V100.peak_fp64_flops())
        );
    }

    #[test]
    fn metrics_off_keeps_launches_bit_identical() {
        let run = |metered: bool| {
            let mut gpu = Gpu::new(V100);
            if metered {
                gpu.set_metrics(wsvd_metrics::MetricsSink::enabled());
            } else {
                gpu.set_metrics(wsvd_metrics::MetricsSink::disabled());
            }
            ten_launches(&gpu, true);
            (gpu.elapsed_seconds(), gpu.timeline().totals)
        };
        let (t_off, c_off) = run(false);
        let (t_on, c_on) = run(true);
        assert_eq!(
            t_off.to_bits(),
            t_on.to_bits(),
            "metrics must not perturb time"
        );
        assert_eq!(c_off, c_on);
    }

    #[test]
    fn metered_fused_scope_records_graph_deltas() {
        let sink = wsvd_metrics::MetricsSink::enabled();
        sink.set_experiment("unit");
        let mut gpu = Gpu::new(V100);
        gpu.set_metrics(sink.clone());
        ten_launches(&gpu, true);
        let g = gpu.graph_stats();
        let snap = sink.snapshot();
        let c = |name: &str| snap.counter("unit", "launch-graph", None, name);
        assert_eq!(c("graphs"), g.graphs as f64);
        assert_eq!(c("nodes"), g.nodes as f64);
        assert_eq!(c("coalesced"), g.coalesced as f64);
        assert_eq!(c("ride_blocks"), g.ride_blocks as f64);
        assert_eq!(
            c("overhead_saved_seconds").to_bits(),
            g.overhead_saved_seconds.to_bits()
        );
        // A second fused scope on the same GPU adds only its own delta.
        ten_launches(&gpu, true);
        let snap2 = sink.snapshot();
        assert_eq!(
            snap2.counter("unit", "launch-graph", None, "graphs"),
            gpu.graph_stats().graphs as f64
        );
        assert_eq!(
            snap2.counter("unit", "launch-graph", None, "nodes"),
            gpu.graph_stats().nodes as f64
        );
    }

    #[test]
    fn traced_fused_run_emits_graph_instant() {
        let sink = wsvd_trace::TraceSink::enabled();
        let gpu = Gpu::with_trace(V100, sink.clone());
        ten_launches(&gpu, true);
        let evs = sink.events();
        let graph_evs: Vec<_> = evs.iter().filter(|e| e.track == "launch-graph").collect();
        assert!(
            graph_evs
                .iter()
                .any(|e| matches!(e.kind, wsvd_trace::EventKind::Instant { .. })),
            "expected a launch-graph instant, got {graph_evs:?}"
        );
        assert!(graph_evs
            .iter()
            .any(|e| matches!(e.kind, wsvd_trace::EventKind::Counter { .. })));
    }
}
