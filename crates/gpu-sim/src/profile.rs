//! Per-kernel profiling, in the spirit of the `nvprof` data behind the
//! paper's §V-B speedup analysis.
//!
//! A [`Profiler`] wraps launch statistics grouped by kernel label, so a run
//! can be broken down into "where did the simulated time and the GM traffic
//! go" — the view Figs. 10–11 are built from.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::counters::{BlockCounters, LaunchStats};

/// Aggregated statistics for one kernel label.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Number of launches with this label.
    pub launches: u64,
    /// Total blocks across launches.
    pub blocks: u64,
    /// Summed counters.
    pub totals: BlockCounters,
    /// Total simulated seconds (kernel + overhead).
    pub seconds: f64,
    /// Time-weighted occupancy accumulator.
    occ_weighted: f64,
}

impl KernelProfile {
    /// Time-weighted mean occupancy for this kernel.
    pub fn mean_occupancy(&self) -> f64 {
        if self.seconds > 0.0 {
            self.occ_weighted / self.seconds
        } else {
            0.0
        }
    }
}

/// Collects per-label kernel statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Profiler {
    kernels: BTreeMap<String, KernelProfile>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch under `label`.
    pub fn record(&mut self, label: &str, stats: &LaunchStats) {
        let k = self.kernels.entry(label.to_string()).or_default();
        k.launches += 1;
        k.blocks += stats.grid as u64;
        k.totals.merge(&stats.totals);
        k.seconds += stats.seconds();
        k.occ_weighted += stats.occupancy * stats.seconds();
    }

    /// Iterates `(label, profile)` pairs, alphabetical by label.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KernelProfile)> {
        self.kernels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Profile for one label, if recorded.
    pub fn get(&self, label: &str) -> Option<&KernelProfile> {
        self.kernels.get(label)
    }

    /// Total simulated seconds across all kernels.
    pub fn total_seconds(&self) -> f64 {
        self.kernels.values().map(|k| k.seconds).sum()
    }

    /// Renders an `nvprof`-style summary table, sorted by time share.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let total = self.total_seconds().max(f64::MIN_POSITIVE);
        let mut rows: Vec<(&str, &KernelProfile)> = self.iter().collect();
        // total_cmp: NaN-safe, so a pathological profile can't panic render.
        rows.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>7}  {:>9}  {:>9}  {:>12}  {:>12}  {:>6}  kernel",
            "time%", "seconds", "launches", "flops", "gm bytes", "occ"
        );
        for (label, k) in rows {
            let _ = writeln!(
                out,
                "{:>6.1}%  {:>9.3e}  {:>9}  {:>12.3e}  {:>12.3e}  {:>6.2}  {}",
                100.0 * k.seconds / total,
                k.seconds,
                k.launches,
                k.totals.flops as f64,
                k.totals.gm_bytes() as f64,
                k.mean_occupancy(),
                label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(grid: usize, secs: f64, flops: u64) -> LaunchStats {
        LaunchStats {
            grid,
            kernel_seconds: secs,
            totals: BlockCounters {
                flops,
                ..Default::default()
            },
            occupancy: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn records_and_aggregates_by_label() {
        let mut p = Profiler::new();
        p.record("svd", &stats(4, 1.0, 100));
        p.record("svd", &stats(2, 2.0, 50));
        p.record("gemm", &stats(8, 0.5, 10));
        let svd = p.get("svd").unwrap();
        assert_eq!(svd.launches, 2);
        assert_eq!(svd.blocks, 6);
        assert_eq!(svd.totals.flops, 150);
        assert!((svd.seconds - 3.0).abs() < 1e-12);
        assert!((p.total_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn render_sorts_by_time() {
        let mut p = Profiler::new();
        p.record("cheap", &stats(1, 0.1, 1));
        p.record("hot", &stats(1, 10.0, 1));
        let s = p.render();
        let hot_pos = s.find("hot").unwrap();
        let cheap_pos = s.find("cheap").unwrap();
        assert!(hot_pos < cheap_pos, "{s}");
    }

    #[test]
    fn render_survives_nan_seconds() {
        let mut p = Profiler::new();
        p.record("ok", &stats(1, 1.0, 1));
        p.record("nan", &stats(1, f64::NAN, 1));
        // Must not panic; NaN sorts deterministically under total_cmp.
        let s = p.render();
        assert!(s.contains("ok") && s.contains("nan"));
    }

    #[test]
    fn mean_occupancy_weighted() {
        let mut p = Profiler::new();
        p.record("k", &stats(1, 1.0, 0));
        assert!((p.get("k").unwrap().mean_occupancy() - 0.5).abs() < 1e-12);
    }
}
