//! Per-kernel profiling, in the spirit of the `nvprof` data behind the
//! paper's §V-B speedup analysis.
//!
//! A [`Profiler`] wraps launch statistics grouped by kernel label, so a run
//! can be broken down into "where did the simulated time and the GM traffic
//! go" — the view Figs. 10–11 are built from.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::counters::{BlockCounters, LaunchStats};
use crate::device::DeviceSpec;

/// Aggregated statistics for one kernel label.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Number of launches with this label.
    pub launches: u64,
    /// Total blocks across launches.
    pub blocks: u64,
    /// Summed counters.
    pub totals: BlockCounters,
    /// Total simulated seconds (kernel + overhead).
    pub seconds: f64,
    /// Launch-overhead seconds included in `seconds`.
    pub overhead_seconds: f64,
    /// Time-weighted occupancy accumulator.
    occ_weighted: f64,
}

impl KernelProfile {
    /// Time-weighted mean occupancy for this kernel.
    pub fn mean_occupancy(&self) -> f64 {
        if self.seconds > 0.0 {
            self.occ_weighted / self.seconds
        } else {
            0.0
        }
    }

    /// The raw quantities the roofline report needs, paired with `device`'s
    /// ceilings — the bridge into [`KernelObservation::derive`].
    pub fn observation(&self, device: &DeviceSpec) -> KernelObservation {
        KernelObservation {
            flops: self.totals.flops as f64,
            gm_bytes: self.totals.gm_bytes() as f64,
            gm_transactions: self.totals.gm_transactions as f64,
            kernel_seconds: self.seconds - self.overhead_seconds,
            overhead_seconds: self.overhead_seconds,
            peak_flops: device.peak_fp64_flops(),
            gm_bandwidth: device.gm_bandwidth(),
            gm_transaction_bytes: device.gm_transaction_bytes as f64,
        }
    }

    /// Derived roofline metrics for this kernel on `device`.
    pub fn derived(&self, device: &DeviceSpec) -> KernelDerived {
        self.observation(device).derive()
    }
}

/// Percentage of `total_seconds` spent in a kernel — the one home for the
/// time-share arithmetic shared by [`Profiler::render`], the bench
/// experiments and the metrics report (an empty profile yields 0%).
pub fn time_share_percent(seconds: f64, total_seconds: f64) -> f64 {
    100.0 * seconds / total_seconds.max(f64::MIN_POSITIVE)
}

/// Raw inputs to the roofline/AI derivation (Eqs. 8–10): one kernel's summed
/// counters and simulated times plus the device ceilings. Built either from
/// a [`KernelProfile`] ([`KernelProfile::observation`]) or from metrics
/// registry counters — both paths share [`KernelObservation::derive`], so
/// the arithmetic cannot diverge between the profiler and the reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelObservation {
    /// Total floating-point operations.
    pub flops: f64,
    /// Total global-memory bytes moved (loads + stores).
    pub gm_bytes: f64,
    /// Total coalesced global-memory transactions.
    pub gm_transactions: f64,
    /// Simulated kernel-execution seconds (excluding launch overhead).
    pub kernel_seconds: f64,
    /// Simulated launch-overhead seconds.
    pub overhead_seconds: f64,
    /// Device peak FP64 throughput in FLOP/s (compute ceiling).
    pub peak_flops: f64,
    /// Device global-memory bandwidth in bytes/s (memory ceiling slope).
    pub gm_bandwidth: f64,
    /// Bytes per coalesced global-memory transaction.
    pub gm_transaction_bytes: f64,
}

/// Roofline metrics derived from one [`KernelObservation`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelDerived {
    /// Arithmetic intensity in FLOP/byte of GM traffic (Eq. 9's numerator
    /// view; infinite for kernels that touch no global memory).
    pub ai: f64,
    /// Achieved FLOP/s over the kernel-execution time.
    pub achieved_flops: f64,
    /// The roofline ceiling at this AI: `min(peak, ai * bandwidth)`.
    pub roof_flops: f64,
    /// Achieved throughput as a fraction of the ceiling.
    pub roof_fraction: f64,
    /// True when AI is at or beyond the ridge point (compute ceiling
    /// applies); false for memory-bound kernels.
    pub compute_bound: bool,
    /// Useful GM bytes per transaction byte: 1.0 means perfectly coalesced
    /// traffic, lower means partially-filled transactions.
    pub gm_transaction_efficiency: f64,
    /// Launch overhead as a fraction of the kernel's total simulated time.
    pub overhead_share: f64,
}

impl KernelObservation {
    /// The single implementation of the roofline/AI arithmetic (Eqs. 8–10).
    pub fn derive(&self) -> KernelDerived {
        let ai = if self.gm_bytes > 0.0 {
            self.flops / self.gm_bytes
        } else if self.flops > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        let ridge = if self.gm_bandwidth > 0.0 {
            self.peak_flops / self.gm_bandwidth
        } else {
            0.0
        };
        let compute_bound = ai >= ridge;
        let roof_flops = if compute_bound {
            self.peak_flops
        } else {
            ai * self.gm_bandwidth
        };
        let achieved_flops = if self.kernel_seconds > 0.0 {
            self.flops / self.kernel_seconds
        } else {
            0.0
        };
        let roof_fraction = if roof_flops > 0.0 {
            achieved_flops / roof_flops
        } else {
            0.0
        };
        let tx_bytes = self.gm_transactions * self.gm_transaction_bytes;
        let gm_transaction_efficiency = if tx_bytes > 0.0 {
            self.gm_bytes / tx_bytes
        } else {
            0.0
        };
        let total = self.kernel_seconds + self.overhead_seconds;
        let overhead_share = if total > 0.0 {
            self.overhead_seconds / total
        } else {
            0.0
        };
        KernelDerived {
            ai,
            achieved_flops,
            roof_flops,
            roof_fraction,
            compute_bound,
            gm_transaction_efficiency,
            overhead_share,
        }
    }
}

/// Collects per-label kernel statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Profiler {
    kernels: BTreeMap<String, KernelProfile>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch under `label`.
    pub fn record(&mut self, label: &str, stats: &LaunchStats) {
        let k = self.kernels.entry(label.to_string()).or_default();
        k.launches += 1;
        k.blocks += stats.grid as u64;
        k.totals.merge(&stats.totals);
        k.seconds += stats.seconds();
        k.overhead_seconds += stats.overhead_seconds;
        k.occ_weighted += stats.occupancy * stats.seconds();
    }

    /// Iterates `(label, profile)` pairs, alphabetical by label.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &KernelProfile)> {
        self.kernels.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Profile for one label, if recorded.
    pub fn get(&self, label: &str) -> Option<&KernelProfile> {
        self.kernels.get(label)
    }

    /// Total simulated seconds across all kernels.
    pub fn total_seconds(&self) -> f64 {
        self.kernels.values().map(|k| k.seconds).sum()
    }

    /// Renders an `nvprof`-style summary table, sorted by time share.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let total = self.total_seconds();
        let mut rows: Vec<(&str, &KernelProfile)> = self.iter().collect();
        // total_cmp: NaN-safe, so a pathological profile can't panic render.
        rows.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>7}  {:>9}  {:>9}  {:>12}  {:>12}  {:>6}  kernel",
            "time%", "seconds", "launches", "flops", "gm bytes", "occ"
        );
        for (label, k) in rows {
            let _ = writeln!(
                out,
                "{:>6.1}%  {:>9.3e}  {:>9}  {:>12.3e}  {:>12.3e}  {:>6.2}  {}",
                time_share_percent(k.seconds, total),
                k.seconds,
                k.launches,
                k.totals.flops as f64,
                k.totals.gm_bytes() as f64,
                k.mean_occupancy(),
                label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(grid: usize, secs: f64, flops: u64) -> LaunchStats {
        LaunchStats {
            grid,
            kernel_seconds: secs,
            totals: BlockCounters {
                flops,
                ..Default::default()
            },
            occupancy: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn records_and_aggregates_by_label() {
        let mut p = Profiler::new();
        p.record("svd", &stats(4, 1.0, 100));
        p.record("svd", &stats(2, 2.0, 50));
        p.record("gemm", &stats(8, 0.5, 10));
        let svd = p.get("svd").unwrap();
        assert_eq!(svd.launches, 2);
        assert_eq!(svd.blocks, 6);
        assert_eq!(svd.totals.flops, 150);
        assert!((svd.seconds - 3.0).abs() < 1e-12);
        assert!((p.total_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn render_sorts_by_time() {
        let mut p = Profiler::new();
        p.record("cheap", &stats(1, 0.1, 1));
        p.record("hot", &stats(1, 10.0, 1));
        let s = p.render();
        let hot_pos = s.find("hot").unwrap();
        let cheap_pos = s.find("cheap").unwrap();
        assert!(hot_pos < cheap_pos, "{s}");
    }

    #[test]
    fn render_survives_nan_seconds() {
        let mut p = Profiler::new();
        p.record("ok", &stats(1, 1.0, 1));
        p.record("nan", &stats(1, f64::NAN, 1));
        // Must not panic; NaN sorts deterministically under total_cmp.
        let s = p.render();
        assert!(s.contains("ok") && s.contains("nan"));
    }

    #[test]
    fn mean_occupancy_weighted() {
        let mut p = Profiler::new();
        p.record("k", &stats(1, 1.0, 0));
        assert!((p.get("k").unwrap().mean_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_share_handles_empty_profile() {
        assert_eq!(time_share_percent(0.0, 0.0), 0.0);
        assert!((time_share_percent(1.0, 4.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn derive_attributes_memory_and_compute_bound() {
        // V100-like ceilings: peak 7e12 FLOP/s, bw 9e11 B/s, ridge ~7.8.
        let base = KernelObservation {
            peak_flops: 7.0e12,
            gm_bandwidth: 9.0e11,
            gm_transaction_bytes: 32.0,
            kernel_seconds: 1.0,
            ..Default::default()
        };
        // AI = 1 flop/byte, well below the ridge: memory bound, roof = ai*bw.
        let mem = KernelObservation {
            flops: 1e9,
            gm_bytes: 1e9,
            gm_transactions: 1e9 / 32.0,
            ..base
        }
        .derive();
        assert!(!mem.compute_bound);
        assert!((mem.ai - 1.0).abs() < 1e-12);
        assert!((mem.roof_flops - 9.0e11).abs() < 1e-3);
        assert!((mem.gm_transaction_efficiency - 1.0).abs() < 1e-12);
        // AI = 100: compute bound, roof = peak.
        let comp = KernelObservation {
            flops: 1e11,
            gm_bytes: 1e9,
            gm_transactions: 1e9 / 32.0,
            ..base
        }
        .derive();
        assert!(comp.compute_bound);
        assert!((comp.roof_flops - 7.0e12).abs() < 1e-3);
        assert!((comp.roof_fraction - 1e11 / 7.0e12).abs() < 1e-12);
        // No GM traffic at all: compute bound with infinite AI.
        let pure = KernelObservation { flops: 1e9, ..base }.derive();
        assert!(pure.compute_bound);
        assert!(pure.ai.is_infinite());
        assert_eq!(pure.gm_transaction_efficiency, 0.0);
    }

    #[test]
    fn derive_overhead_share() {
        let d = KernelObservation {
            kernel_seconds: 3.0,
            overhead_seconds: 1.0,
            peak_flops: 1.0,
            gm_bandwidth: 1.0,
            ..Default::default()
        }
        .derive();
        assert!((d.overhead_share - 0.25).abs() < 1e-12);
        assert_eq!(KernelObservation::default().derive().overhead_share, 0.0);
    }

    #[test]
    fn profile_observation_splits_kernel_and_overhead() {
        let mut p = Profiler::new();
        let mut s = stats(2, 1.0, 1000);
        s.overhead_seconds = 0.5;
        p.record("k", &s);
        let obs = p.get("k").unwrap().observation(&crate::device::V100);
        assert!((obs.kernel_seconds - 1.0).abs() < 1e-12);
        assert!((obs.overhead_seconds - 0.5).abs() < 1e-12);
        assert_eq!(obs.flops, 1000.0);
        assert!((obs.peak_flops - crate::device::V100.peak_fp64_flops()).abs() < 1.0);
    }
}
