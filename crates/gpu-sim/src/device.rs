//! GPU device descriptions.
//!
//! Each [`DeviceSpec`] captures the handful of architectural parameters the
//! paper's analysis depends on: static shared-memory capacity per thread
//! block (48 KiB — Observation 2 in §III-A), warp width, SM count, FP64 and
//! memory throughput (the two roofline ceilings), occupancy limits, the
//! `Load_width` of the arithmetic-intensity model (Eq. 9), and — for the
//! A100 — a tensor-core GEMM multiplier (Fig. 13).

use serde::{Deserialize, Serialize};

/// Architectural parameters of a simulated GPU.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Static shared memory available to one thread block, in bytes.
    pub smem_per_block_bytes: usize,
    /// Number of streaming multiprocessors (CUs on AMD).
    pub num_sms: usize,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Shared memory per SM (bounds resident blocks by their smem usage).
    pub smem_per_sm_bytes: usize,
    /// Threads per warp (wavefront width on AMD).
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// FP64 FMA lanes per SM (FMA results per cycle per SM).
    pub fp64_lanes_per_sm: usize,
    /// Global-memory bandwidth in bytes per cycle (device-wide).
    pub gm_bytes_per_cycle: f64,
    /// Elements fetched per load request (`Load_width` in Eq. 9).
    pub load_width: usize,
    /// Fixed host-side cost of one kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// Per-node dispatch cost inside a replayed [`crate::LaunchGraph`], in
    /// microseconds. CUDA-graph-style replay skips the host round-trip, so
    /// this is roughly an order of magnitude below `launch_overhead_us`.
    pub graph_node_overhead_us: f64,
    /// GEMM throughput multiplier from tensor cores (1.0 when absent).
    pub tensor_gemm_speedup: f64,
    /// Size in bytes of one global-memory transaction (coalescing unit).
    pub gm_transaction_bytes: usize,
}

impl DeviceSpec {
    /// Peak FP64 throughput in FLOP/s (2 FLOPs per FMA).
    pub fn peak_fp64_flops(&self) -> f64 {
        2.0 * self.fp64_lanes_per_sm as f64 * self.num_sms as f64 * self.clock_ghz * 1e9
    }

    /// Global-memory bandwidth in bytes/s.
    pub fn gm_bandwidth(&self) -> f64 {
        self.gm_bytes_per_cycle * self.clock_ghz * 1e9
    }

    /// How many blocks of the given footprint can be resident at once,
    /// device-wide (the occupancy calculation).
    pub fn concurrent_blocks(&self, threads_per_block: usize, smem_bytes: usize) -> usize {
        let by_threads = if threads_per_block == 0 {
            self.max_blocks_per_sm
        } else {
            self.max_threads_per_sm / threads_per_block.max(1)
        };
        let by_smem = self
            .smem_per_sm_bytes
            .checked_div(smem_bytes)
            .unwrap_or(self.max_blocks_per_sm);
        let per_sm = self.max_blocks_per_sm.min(by_threads).min(by_smem).max(1);
        per_sm * self.num_sms
    }

    /// Occupancy of a launch: resident threads over the device maximum.
    pub fn occupancy(&self, grid: usize, threads_per_block: usize, smem_bytes: usize) -> f64 {
        let resident = grid.min(self.concurrent_blocks(threads_per_block, smem_bytes));
        let active_threads = resident * threads_per_block;
        (active_threads as f64 / (self.num_sms * self.max_threads_per_sm) as f64).min(1.0)
    }
}

/// NVIDIA Tesla V100 (SXM2, 16 GB) — the paper's primary platform.
pub const V100: DeviceSpec = DeviceSpec {
    name: "Tesla V100",
    smem_per_block_bytes: 48 * 1024,
    num_sms: 80,
    max_blocks_per_sm: 32,
    max_threads_per_sm: 2048,
    smem_per_sm_bytes: 96 * 1024,
    warp_size: 32,
    clock_ghz: 1.38,
    fp64_lanes_per_sm: 32,
    gm_bytes_per_cycle: 652.0, // ~900 GB/s
    load_width: 4,
    launch_overhead_us: 5.0,
    graph_node_overhead_us: 0.5,
    tensor_gemm_speedup: 1.0,
    gm_transaction_bytes: 32,
};

/// NVIDIA Tesla P100 (the platform of Table IV).
pub const P100: DeviceSpec = DeviceSpec {
    name: "Tesla P100",
    smem_per_block_bytes: 48 * 1024,
    num_sms: 56,
    max_blocks_per_sm: 32,
    max_threads_per_sm: 2048,
    smem_per_sm_bytes: 64 * 1024,
    warp_size: 32,
    clock_ghz: 1.33,
    fp64_lanes_per_sm: 32,
    gm_bytes_per_cycle: 550.0, // ~732 GB/s
    load_width: 4,
    launch_overhead_us: 5.5,
    graph_node_overhead_us: 0.6,
    tensor_gemm_speedup: 1.0,
    gm_transaction_bytes: 32,
};

/// NVIDIA Ampere A100 with FP64 tensor cores (Fig. 13).
pub const A100: DeviceSpec = DeviceSpec {
    name: "Ampere A100",
    smem_per_block_bytes: 48 * 1024, // static configuration, as in the paper
    num_sms: 108,
    max_blocks_per_sm: 32,
    max_threads_per_sm: 2048,
    smem_per_sm_bytes: 164 * 1024,
    warp_size: 32,
    clock_ghz: 1.41,
    fp64_lanes_per_sm: 32,
    gm_bytes_per_cycle: 1103.0, // ~1555 GB/s
    load_width: 4,
    launch_overhead_us: 4.0,
    graph_node_overhead_us: 0.4,
    tensor_gemm_speedup: 2.0,
    gm_transaction_bytes: 32,
};

/// NVIDIA GTX Titan X (Maxwell): weak FP64, strong relative SM benefit.
pub const TITAN_X: DeviceSpec = DeviceSpec {
    name: "GTX Titan X",
    smem_per_block_bytes: 48 * 1024,
    num_sms: 24,
    max_blocks_per_sm: 32,
    max_threads_per_sm: 2048,
    smem_per_sm_bytes: 96 * 1024,
    warp_size: 32,
    clock_ghz: 1.0,
    fp64_lanes_per_sm: 4,      // 1/32 FP64 rate of Maxwell
    gm_bytes_per_cycle: 336.0, // ~336 GB/s
    load_width: 4,
    launch_overhead_us: 6.0,
    graph_node_overhead_us: 0.6,
    tensor_gemm_speedup: 1.0,
    gm_transaction_bytes: 32,
};

/// AMD Vega20 (Radeon VII / MI50 class) under the HIP runtime.
pub const VEGA20: DeviceSpec = DeviceSpec {
    name: "AMD Vega20",
    smem_per_block_bytes: 64 * 1024, // LDS per workgroup
    num_sms: 60,
    max_blocks_per_sm: 16,
    max_threads_per_sm: 2048,
    smem_per_sm_bytes: 64 * 1024,
    warp_size: 64,
    clock_ghz: 1.7,
    fp64_lanes_per_sm: 16,
    gm_bytes_per_cycle: 588.0, // ~1 TB/s HBM2
    load_width: 4,
    launch_overhead_us: 8.0,
    graph_node_overhead_us: 0.8,
    tensor_gemm_speedup: 1.0,
    gm_transaction_bytes: 32,
};

/// All device presets, for portability sweeps (Fig. 14a).
pub const ALL_DEVICES: [DeviceSpec; 5] = [V100, P100, A100, TITAN_X, VEGA20];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_flops_is_7_8_tflops() {
        let p = V100.peak_fp64_flops();
        assert!((p / 1e12 - 7.065).abs() < 0.2, "got {p}");
    }

    #[test]
    fn concurrent_blocks_limited_by_threads() {
        // 1024 threads/block on V100: 2 blocks per SM by threads.
        assert_eq!(V100.concurrent_blocks(1024, 0), 2 * 80);
    }

    #[test]
    fn concurrent_blocks_limited_by_smem() {
        // 48 KiB blocks, 96 KiB per SM: 2 per SM.
        assert_eq!(V100.concurrent_blocks(64, 48 * 1024), 2 * 80);
    }

    #[test]
    fn concurrent_blocks_limited_by_hw_cap() {
        assert_eq!(V100.concurrent_blocks(32, 128), 32 * 80);
    }

    #[test]
    fn occupancy_grows_with_grid() {
        let low = V100.occupancy(10, 256, 16 * 1024);
        let high = V100.occupancy(500, 256, 16 * 1024);
        assert!(low < high);
        assert!(high <= 1.0);
    }

    #[test]
    fn occupancy_clamped_at_one() {
        assert_eq!(V100.occupancy(1_000_000, 2048, 0), 1.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // spec test of the device table
    fn a100_has_tensor_speedup() {
        assert!(A100.tensor_gemm_speedup > V100.tensor_gemm_speedup);
        assert_eq!(V100.tensor_gemm_speedup, 1.0);
    }

    #[test]
    fn graph_node_cost_is_well_below_launch_cost() {
        for d in ALL_DEVICES {
            assert!(d.graph_node_overhead_us > 0.0, "{}", d.name);
            assert!(
                d.graph_node_overhead_us <= d.launch_overhead_us / 5.0,
                "{}: node cost {} vs launch cost {}",
                d.name,
                d.graph_node_overhead_us,
                d.launch_overhead_us
            );
        }
    }

    #[test]
    fn all_devices_have_positive_rates() {
        for d in ALL_DEVICES {
            assert!(d.peak_fp64_flops() > 0.0, "{}", d.name);
            assert!(d.gm_bandwidth() > 0.0, "{}", d.name);
            assert!(d.concurrent_blocks(256, 1024) > 0, "{}", d.name);
        }
    }
}
