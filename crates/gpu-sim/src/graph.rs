//! Fused launch graphs: CUDA-graph-style amortization of launch overhead.
//!
//! The serial launch path charges every kernel the full host-side
//! `launch_overhead_us` (see the `serial_loop_of_launches_pays_overhead`
//! test). Real batched SVD solvers amortize that cost: they record a level's
//! launch sequence once and replay it as a graph, paying the driver
//! round-trip once per graph plus a small per-node dispatch cost, and
//! back-to-back launches with the same block shape stay on the already
//! resident SM slots.
//!
//! The simulator models this with a [`LaunchGraph`] scope obtained from
//! [`crate::Gpu::launch_graph`]. Kernels issued while the scope is alive
//! still execute eagerly (their data dependencies are real), so counters,
//! sanitizer behaviour and numerics are bit-identical to the serial path —
//! recording and replay collapse into a single pass because only the timing
//! account changes:
//!
//! * the first node of a graph pays the full `launch_overhead_us` (the graph
//!   launch itself),
//! * every later node pays `graph_node_overhead_us`,
//! * a node whose `(threads_per_block, smem_bytes_per_block)` shape matches
//!   the previous node coalesces: it pays no dispatch cost, and as many of
//!   its blocks as fit in the free slots of the run's last resident wave
//!   ride that wave instead of opening a new one (the batched-kernel idiom:
//!   what the serial path issues as separate small grids becomes one larger
//!   grid filling the device). Riding blocks add no makespan — the model
//!   assumes same-shape neighbours have comparable block durations, which
//!   holds for the per-sweep/per-level kernels the W-cycle emits.
//!
//! Scopes nest: a recursive W-cycle level opened inside an enclosing scope
//! joins the enclosing graph (a child graph), so the outer graph's single
//! launch cost covers the whole recursion tree.

use serde::{Deserialize, Serialize};

/// Cumulative statistics over all launch graphs replayed on one [`crate::Gpu`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Completed outermost graphs that recorded at least one node.
    pub graphs: u64,
    /// Kernel launches recorded as graph nodes.
    pub nodes: u64,
    /// Nodes that coalesced with the preceding same-shape node.
    pub coalesced: u64,
    /// Blocks that rode an already-resident wave instead of opening one.
    pub ride_blocks: u64,
    /// Total launch-overhead seconds avoided relative to serial launches.
    pub overhead_saved_seconds: f64,
    /// Kernel seconds avoided by blocks riding resident waves.
    pub overlap_saved_seconds: f64,
}

/// Per-[`crate::Gpu`] capture state. Owned by the `Gpu` behind a mutex; the
/// lock order is deterministic because launches inside a fused scope are
/// issued serially by the host-side algorithm (block bodies never launch).
#[derive(Debug, Default)]
pub(crate) struct GraphState {
    /// Nesting depth of open [`LaunchGraph`] scopes.
    depth: usize,
    /// Nodes recorded since the outermost scope opened.
    open_nodes: u64,
    /// Coalesced nodes since the outermost scope opened.
    open_coalesced: u64,
    /// Shape of the previous node, for coalescing.
    last_shape: Option<(usize, usize)>,
    /// Blocks occupying the last (possibly partial) slot wave of the current
    /// same-shape run; coalesced successors fill `slots - resident` for free.
    resident: usize,
    /// Finished-graph totals.
    stats: GraphStats,
    /// Totals already handed out by [`GraphState::take_unreported`]; the
    /// difference against `stats` is the per-graph delta the metrics
    /// registry records (stats themselves stay Gpu-cumulative).
    reported: GraphStats,
}

impl GraphState {
    /// True when a fused scope is open and launches record as graph nodes.
    pub(crate) fn capturing(&self) -> bool {
        self.depth > 0
    }

    pub(crate) fn begin(&mut self) {
        self.depth += 1;
    }

    /// Closes one scope; returns the finished graph's `(nodes, coalesced)`
    /// when the outermost scope closes with at least one node recorded.
    pub(crate) fn end(&mut self) -> Option<(u64, u64)> {
        debug_assert!(self.depth > 0, "unbalanced LaunchGraph scope");
        self.depth = self.depth.saturating_sub(1);
        if self.depth > 0 {
            return None;
        }
        let nodes = self.open_nodes;
        let coalesced = self.open_coalesced;
        self.open_nodes = 0;
        self.open_coalesced = 0;
        self.last_shape = None;
        self.resident = 0;
        if nodes == 0 {
            return None;
        }
        self.stats.graphs += 1;
        self.stats.nodes += nodes;
        self.stats.coalesced += coalesced;
        Some((nodes, coalesced))
    }

    /// Accounts one launch of `grid` blocks issued while capturing, on a
    /// device with `slots` concurrent block slots for this shape. Returns
    /// `(overhead_seconds, ride_blocks)`: the dispatch cost to charge, and
    /// how many leading blocks ride the already-resident wave (contributing
    /// no makespan). `full` / `node` are the device's serial-launch and
    /// graph-node costs in seconds.
    pub(crate) fn charge_node(
        &mut self,
        shape: (usize, usize),
        grid: usize,
        slots: usize,
        full: f64,
        node: f64,
    ) -> (f64, usize) {
        debug_assert!(self.capturing());
        self.open_nodes += 1;
        let same = self.last_shape == Some(shape);
        let (charged, ride) = if self.open_nodes == 1 {
            (full, 0) // the graph launch itself
        } else if same {
            self.open_coalesced += 1;
            let free = slots.saturating_sub(self.resident).min(grid);
            (0.0, free)
        } else {
            (node, 0)
        };
        // Occupancy of the run's last wave after this node's blocks land.
        let run_blocks = if same { self.resident + grid } else { grid };
        self.resident = if slots == 0 || run_blocks == 0 {
            0
        } else {
            (run_blocks - 1) % slots + 1
        };
        self.last_shape = Some(shape);
        self.stats.ride_blocks += ride as u64;
        self.stats.overhead_saved_seconds += full - charged;
        (charged, ride)
    }

    /// Credits kernel seconds avoided by riding blocks (recorded by the
    /// launch path once it has scheduled the non-riding remainder).
    pub(crate) fn add_overlap_saved(&mut self, seconds: f64) {
        self.stats.overlap_saved_seconds += seconds;
    }

    pub(crate) fn stats(&self) -> GraphStats {
        self.stats
    }

    /// The statistics accumulated since the previous call (or since the
    /// beginning): the field-wise difference between the cumulative totals
    /// and what was already reported. Lets the launch path record per-graph
    /// deltas into the metrics registry without changing the cumulative
    /// semantics of [`GraphState::stats`].
    pub(crate) fn take_unreported(&mut self) -> GraphStats {
        let d = GraphStats {
            graphs: self.stats.graphs - self.reported.graphs,
            nodes: self.stats.nodes - self.reported.nodes,
            coalesced: self.stats.coalesced - self.reported.coalesced,
            ride_blocks: self.stats.ride_blocks - self.reported.ride_blocks,
            overhead_saved_seconds: self.stats.overhead_saved_seconds
                - self.reported.overhead_saved_seconds,
            overlap_saved_seconds: self.stats.overlap_saved_seconds
                - self.reported.overlap_saved_seconds,
        };
        self.reported = self.stats;
        d
    }
}

/// RAII scope for fused launch capture, returned by
/// [`crate::Gpu::launch_graph`]. Kernels launched while this scope is alive
/// become nodes of one launch graph; dropping the scope replays (closes) the
/// graph. Nested scopes join the enclosing graph.
#[must_use = "launches fuse only while the LaunchGraph scope is alive"]
pub struct LaunchGraph<'a> {
    pub(crate) gpu: &'a crate::Gpu,
    pub(crate) label: &'static str,
}

impl Drop for LaunchGraph<'_> {
    fn drop(&mut self) {
        self.gpu.end_launch_graph(self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: f64 = 5e-6;
    const NODE: f64 = 5e-7;

    #[test]
    fn empty_graph_records_nothing() {
        let mut g = GraphState::default();
        g.begin();
        assert!(g.capturing());
        assert_eq!(g.end(), None);
        assert_eq!(g.stats(), GraphStats::default());
    }

    #[test]
    fn first_node_pays_full_then_node_then_coalesces() {
        let mut g = GraphState::default();
        g.begin();
        assert_eq!(g.charge_node((256, 1024), 1, 16, FULL, NODE), (FULL, 0));
        assert_eq!(g.charge_node((128, 1024), 1, 16, FULL, NODE), (NODE, 0));
        assert_eq!(g.charge_node((128, 1024), 1, 16, FULL, NODE), (0.0, 1));
        assert_eq!(g.end(), Some((3, 1)));
        let s = g.stats();
        assert_eq!(s.graphs, 1);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.ride_blocks, 1);
        assert!((s.overhead_saved_seconds - ((FULL - NODE) + FULL)).abs() < 1e-18);
    }

    #[test]
    fn riding_is_capped_by_free_slots() {
        let mut g = GraphState::default();
        g.begin();
        // 3 blocks on a 4-slot device: one partial wave, 1 slot free.
        assert_eq!(g.charge_node((64, 0), 3, 4, FULL, NODE), (FULL, 0));
        // 5 more same-shape blocks: 1 rides the free slot, 4 open new waves;
        // the run now holds 8 blocks = two full waves, no free slot.
        assert_eq!(g.charge_node((64, 0), 5, 4, FULL, NODE), (0.0, 1));
        // Next same-shape node finds no free slot to ride.
        assert_eq!(g.charge_node((64, 0), 2, 4, FULL, NODE), (0.0, 0));
        // A shape change resets residency (new kernel, new waves).
        assert_eq!(g.charge_node((128, 0), 2, 4, FULL, NODE), (NODE, 0));
        assert_eq!(g.end(), Some((4, 2)));
        assert_eq!(g.stats().ride_blocks, 1);
    }

    #[test]
    fn nested_scopes_join_one_graph() {
        let mut g = GraphState::default();
        g.begin();
        g.charge_node((64, 0), 1, 16, FULL, NODE);
        g.begin();
        g.charge_node((64, 0), 1, 16, FULL, NODE);
        assert_eq!(g.end(), None, "inner scope must not close the graph");
        assert!(g.capturing());
        assert_eq!(g.end(), Some((2, 1)));
        assert_eq!(g.stats().graphs, 1);
    }

    #[test]
    fn take_unreported_returns_per_graph_deltas() {
        let mut g = GraphState::default();
        g.begin();
        g.charge_node((64, 0), 1, 16, FULL, NODE);
        g.charge_node((64, 0), 1, 16, FULL, NODE);
        g.end();
        let first = g.take_unreported();
        assert_eq!(first.graphs, 1);
        assert_eq!(first.nodes, 2);
        assert_eq!(first.coalesced, 1);
        g.begin();
        g.charge_node((128, 0), 1, 16, FULL, NODE);
        g.end();
        let second = g.take_unreported();
        assert_eq!(second.graphs, 1);
        assert_eq!(second.nodes, 1);
        assert_eq!(second.coalesced, 0);
        // Cumulative totals are untouched by reporting.
        assert_eq!(g.stats().graphs, 2);
        assert_eq!(g.stats().nodes, 3);
        assert_eq!(g.take_unreported(), GraphStats::default());
    }

    #[test]
    fn coalescing_resets_across_graphs() {
        let mut g = GraphState::default();
        g.begin();
        g.charge_node((64, 0), 1, 16, FULL, NODE);
        g.end();
        g.begin();
        // Same shape as the last node of the previous graph, but a new graph
        // pays its own launch cost: residency does not survive replay.
        assert_eq!(g.charge_node((64, 0), 1, 16, FULL, NODE), (FULL, 0));
        assert_eq!(g.end(), Some((1, 0)));
        assert_eq!(g.stats().graphs, 2);
        assert_eq!(g.stats().coalesced, 0);
    }
}
