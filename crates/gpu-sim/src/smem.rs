//! Shared-memory arena with hard capacity enforcement.
//!
//! Every thread block in the simulator owns one [`SharedMem`] sized by the
//! device's static per-block capacity (48 KiB on the paper's platforms).
//! Kernels *must* obtain their working buffers through it; an allocation
//! beyond capacity fails with [`SmemOverflow`]. This makes the W-cycle's
//! "can the SVD of `A_ij` be accomplished entirely within SM?" predicates
//! (Algorithm 2, lines 2/8/10) real, testable decisions instead of comments.
//!
//! The arena is an accounting allocator: buffers own their storage (plain
//! `Vec<f64>` handles) while the arena enforces the byte budget, so kernels
//! can use ordinary slice/`Matrix` code on SM-resident data.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Error returned when a shared-memory allocation exceeds block capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmemOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes still available in the arena.
    pub available: usize,
    /// Total arena capacity in bytes.
    pub capacity: usize,
}

impl fmt::Display for SmemOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared memory overflow: requested {} B, available {} B of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for SmemOverflow {}

/// Per-block shared-memory budget tracker.
pub struct SharedMem {
    capacity: usize,
    used: Rc<Cell<usize>>,
    peak: Rc<Cell<usize>>,
    next_id: Cell<usize>,
}

/// An SM-resident `f64` buffer. Storage is owned; the bytes stay charged to
/// the arena until the buffer is dropped.
#[derive(Debug)]
pub struct SmemBuf {
    data: Vec<f64>,
    used: Rc<Cell<usize>>,
    id: usize,
}

impl SharedMem {
    /// Creates an arena with the given capacity in bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity: capacity_bytes,
            used: Rc::new(Cell::new(0)),
            peak: Rc::new(Cell::new(0)),
            next_id: Cell::new(0),
        }
    }

    /// Allocates `n` zeroed `f64` elements, or fails if the budget would be
    /// exceeded.
    pub fn alloc(&self, n: usize) -> Result<SmemBuf, SmemOverflow> {
        let bytes = n * std::mem::size_of::<f64>();
        let used = self.used.get();
        if used + bytes > self.capacity {
            return Err(SmemOverflow {
                requested: bytes,
                available: self.capacity - used,
                capacity: self.capacity,
            });
        }
        self.used.set(used + bytes);
        if self.used.get() > self.peak.get() {
            self.peak.set(self.used.get());
        }
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        Ok(SmemBuf {
            data: vec![0.0; n],
            used: Rc::clone(&self.used),
            id,
        })
    }

    /// Allocates and fills from a global-memory slice (callers should count
    /// the GM traffic via the block context).
    pub fn alloc_from(&self, src: &[f64]) -> Result<SmemBuf, SmemOverflow> {
        let mut b = self.alloc(src.len())?;
        b.as_mut_slice().copy_from_slice(src);
        Ok(b)
    }

    /// Returns whether `n` additional `f64`s would fit right now.
    pub fn would_fit(&self, n: usize) -> bool {
        self.used.get() + n * std::mem::size_of::<f64>() <= self.capacity
    }

    /// Currently allocated bytes.
    pub fn used_bytes(&self) -> usize {
        self.used.get()
    }

    /// High-water mark of allocated bytes over the arena's lifetime.
    pub fn peak_bytes(&self) -> usize {
        self.peak.get()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }
}

impl SmemBuf {
    /// Read access to the buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Write access to the buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of `f64` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Allocation id within this buffer's arena (monotonic per block), used
    /// by the sanitizer to attribute hazards to a specific buffer.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Drop for SmemBuf {
    fn drop(&mut self) {
        let bytes = self.data.len() * std::mem::size_of::<f64>();
        self.used.set(self.used.get().saturating_sub(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity() {
        let sm = SharedMem::new(1024);
        let b = sm.alloc(100).unwrap(); // 800 bytes
        assert_eq!(b.len(), 100);
        assert_eq!(sm.used_bytes(), 800);
        assert!(sm.would_fit(28));
        assert!(!sm.would_fit(29));
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let sm = SharedMem::new(48 * 1024);
        // 6144 f64s fill 48 KiB exactly.
        let _a = sm.alloc(6144).unwrap();
        let err = sm.alloc(1).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.capacity, 48 * 1024);
    }

    #[test]
    fn drop_releases_budget() {
        let sm = SharedMem::new(800);
        {
            let _b = sm.alloc(100).unwrap();
            assert_eq!(sm.used_bytes(), 800);
        }
        assert_eq!(sm.used_bytes(), 0);
        assert_eq!(sm.peak_bytes(), 800);
        let _c = sm.alloc(100).unwrap();
    }

    #[test]
    fn alloc_from_copies() {
        let sm = SharedMem::new(1024);
        let src = [1.0, 2.0, 3.0];
        let b = sm.alloc_from(&src).unwrap();
        assert_eq!(b.as_slice(), &src);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let sm = SharedMem::new(1600);
        let a = sm.alloc(100).unwrap();
        let b = sm.alloc(100).unwrap();
        drop(a);
        drop(b);
        let _c = sm.alloc(10).unwrap();
        assert_eq!(sm.peak_bytes(), 1600);
    }

    #[test]
    fn buffer_ids_are_monotonic_per_arena() {
        let sm = SharedMem::new(1024);
        let a = sm.alloc(1).unwrap();
        let b = sm.alloc(1).unwrap();
        drop(a);
        let c = sm.alloc(1).unwrap();
        assert_eq!(b.id(), 1);
        assert_eq!(c.id(), 2); // ids are never reused, even after a drop
    }

    #[test]
    fn overflow_error_displays() {
        let sm = SharedMem::new(8);
        let err = sm.alloc(2).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("16 B"), "{msg}");
    }
}
