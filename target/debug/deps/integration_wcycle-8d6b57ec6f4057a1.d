/root/repo/target/debug/deps/integration_wcycle-8d6b57ec6f4057a1.d: tests/integration_wcycle.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_wcycle-8d6b57ec6f4057a1.rmeta: tests/integration_wcycle.rs Cargo.toml

tests/integration_wcycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
