/root/repo/target/debug/deps/wsvd_linalg-2feafa3c35cdaa41.d: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_linalg-2feafa3c35cdaa41.rmeta: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/bidiag_svd.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/givens.rs:
crates/linalg/src/householder.rs:
crates/linalg/src/lowp.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
