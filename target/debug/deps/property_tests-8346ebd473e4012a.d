/root/repo/target/debug/deps/property_tests-8346ebd473e4012a.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-8346ebd473e4012a: tests/property_tests.rs

tests/property_tests.rs:
