/root/repo/target/debug/deps/rayon-bc3ebd03d5d644aa.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-bc3ebd03d5d644aa: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
