/root/repo/target/debug/deps/wcycle_svd-33fcbbc1205d52f6.d: src/lib.rs

/root/repo/target/debug/deps/wcycle_svd-33fcbbc1205d52f6: src/lib.rs

src/lib.rs:
