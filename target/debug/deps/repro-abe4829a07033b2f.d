/root/repo/target/debug/deps/repro-abe4829a07033b2f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-abe4829a07033b2f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
