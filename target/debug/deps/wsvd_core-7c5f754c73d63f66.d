/root/repo/target/debug/deps/wsvd_core-7c5f754c73d63f66.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_core-7c5f754c73d63f66.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
