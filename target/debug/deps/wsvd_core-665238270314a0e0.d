/root/repo/target/debug/deps/wsvd_core-665238270314a0e0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/wsvd_core-665238270314a0e0: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
