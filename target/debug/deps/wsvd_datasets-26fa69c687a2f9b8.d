/root/repo/target/debug/deps/wsvd_datasets-26fa69c687a2f9b8.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/debug/deps/libwsvd_datasets-26fa69c687a2f9b8.rlib: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/debug/deps/libwsvd_datasets-26fa69c687a2f9b8.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
