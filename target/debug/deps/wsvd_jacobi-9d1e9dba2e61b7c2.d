/root/repo/target/debug/deps/wsvd_jacobi-9d1e9dba2e61b7c2.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/debug/deps/libwsvd_jacobi-9d1e9dba2e61b7c2.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/debug/deps/libwsvd_jacobi-9d1e9dba2e61b7c2.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
