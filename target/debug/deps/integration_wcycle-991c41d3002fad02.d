/root/repo/target/debug/deps/integration_wcycle-991c41d3002fad02.d: tests/integration_wcycle.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_wcycle-991c41d3002fad02.rmeta: tests/integration_wcycle.rs Cargo.toml

tests/integration_wcycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
