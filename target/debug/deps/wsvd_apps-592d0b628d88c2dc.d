/root/repo/target/debug/deps/wsvd_apps-592d0b628d88c2dc.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-592d0b628d88c2dc.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-592d0b628d88c2dc.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
