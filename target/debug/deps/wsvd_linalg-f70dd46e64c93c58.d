/root/repo/target/debug/deps/wsvd_linalg-f70dd46e64c93c58.d: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs

/root/repo/target/debug/deps/libwsvd_linalg-f70dd46e64c93c58.rlib: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs

/root/repo/target/debug/deps/libwsvd_linalg-f70dd46e64c93c58.rmeta: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs

crates/linalg/src/lib.rs:
crates/linalg/src/bidiag_svd.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/givens.rs:
crates/linalg/src/householder.rs:
crates/linalg/src/lowp.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/verify.rs:
