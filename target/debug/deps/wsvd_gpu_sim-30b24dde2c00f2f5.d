/root/repo/target/debug/deps/wsvd_gpu_sim-30b24dde2c00f2f5.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_gpu_sim-30b24dde2c00f2f5.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cluster.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/graph.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/sanitize.rs:
crates/gpu-sim/src/smem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
