/root/repo/target/debug/deps/wsvd_batched-0ebaeb678f1aac42.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/wsvd_batched-0ebaeb678f1aac42: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
