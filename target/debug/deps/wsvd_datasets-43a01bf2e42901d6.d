/root/repo/target/debug/deps/wsvd_datasets-43a01bf2e42901d6.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_datasets-43a01bf2e42901d6.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
