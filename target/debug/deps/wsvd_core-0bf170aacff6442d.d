/root/repo/target/debug/deps/wsvd_core-0bf170aacff6442d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-0bf170aacff6442d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-0bf170aacff6442d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
