/root/repo/target/debug/deps/metrics_integration-1da4483d7c27bfeb.d: tests/metrics_integration.rs

/root/repo/target/debug/deps/metrics_integration-1da4483d7c27bfeb: tests/metrics_integration.rs

tests/metrics_integration.rs:
