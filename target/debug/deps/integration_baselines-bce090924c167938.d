/root/repo/target/debug/deps/integration_baselines-bce090924c167938.d: tests/integration_baselines.rs

/root/repo/target/debug/deps/integration_baselines-bce090924c167938: tests/integration_baselines.rs

tests/integration_baselines.rs:
