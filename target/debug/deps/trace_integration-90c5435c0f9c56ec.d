/root/repo/target/debug/deps/trace_integration-90c5435c0f9c56ec.d: tests/trace_integration.rs

/root/repo/target/debug/deps/trace_integration-90c5435c0f9c56ec: tests/trace_integration.rs

tests/trace_integration.rs:
