/root/repo/target/debug/deps/wsvd_jacobi-4a1ed1d52c06825e.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-4a1ed1d52c06825e.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-4a1ed1d52c06825e.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
