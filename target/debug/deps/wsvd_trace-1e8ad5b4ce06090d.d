/root/repo/target/debug/deps/wsvd_trace-1e8ad5b4ce06090d.d: crates/trace/src/lib.rs

/root/repo/target/debug/deps/wsvd_trace-1e8ad5b4ce06090d: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
