/root/repo/target/debug/deps/rayon-9e23b6a48ca708cd.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-9e23b6a48ca708cd.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-9e23b6a48ca708cd.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
