/root/repo/target/debug/deps/integration_baselines-3e04f23e49a67cc5.d: tests/integration_baselines.rs

/root/repo/target/debug/deps/integration_baselines-3e04f23e49a67cc5: tests/integration_baselines.rs

tests/integration_baselines.rs:
