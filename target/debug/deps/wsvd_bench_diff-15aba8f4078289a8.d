/root/repo/target/debug/deps/wsvd_bench_diff-15aba8f4078289a8.d: crates/bench/src/bin/wsvd_bench_diff.rs

/root/repo/target/debug/deps/wsvd_bench_diff-15aba8f4078289a8: crates/bench/src/bin/wsvd_bench_diff.rs

crates/bench/src/bin/wsvd_bench_diff.rs:
