/root/repo/target/debug/deps/wsvd_batched-b5f26cbd2074ec0e.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/wsvd_batched-b5f26cbd2074ec0e: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
