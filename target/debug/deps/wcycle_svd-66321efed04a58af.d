/root/repo/target/debug/deps/wcycle_svd-66321efed04a58af.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle_svd-66321efed04a58af.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
