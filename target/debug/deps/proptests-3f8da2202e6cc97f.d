/root/repo/target/debug/deps/proptests-3f8da2202e6cc97f.d: crates/batched/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3f8da2202e6cc97f: crates/batched/tests/proptests.rs

crates/batched/tests/proptests.rs:
