/root/repo/target/debug/deps/integration_baselines-744713a8c745fb02.d: tests/integration_baselines.rs

/root/repo/target/debug/deps/integration_baselines-744713a8c745fb02: tests/integration_baselines.rs

tests/integration_baselines.rs:
