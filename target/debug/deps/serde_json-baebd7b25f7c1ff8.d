/root/repo/target/debug/deps/serde_json-baebd7b25f7c1ff8.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-baebd7b25f7c1ff8.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-baebd7b25f7c1ff8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
