/root/repo/target/debug/deps/wsvd_baselines-e321188c9ee4a93f.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/wsvd_baselines-e321188c9ee4a93f: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
