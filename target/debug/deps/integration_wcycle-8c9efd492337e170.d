/root/repo/target/debug/deps/integration_wcycle-8c9efd492337e170.d: tests/integration_wcycle.rs

/root/repo/target/debug/deps/integration_wcycle-8c9efd492337e170: tests/integration_wcycle.rs

tests/integration_wcycle.rs:
