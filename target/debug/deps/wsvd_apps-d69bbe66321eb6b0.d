/root/repo/target/debug/deps/wsvd_apps-d69bbe66321eb6b0.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_apps-d69bbe66321eb6b0.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
