/root/repo/target/debug/deps/wsvd_metrics-bd22632a942693aa.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libwsvd_metrics-bd22632a942693aa.rlib: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libwsvd_metrics-bd22632a942693aa.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
