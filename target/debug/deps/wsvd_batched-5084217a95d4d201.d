/root/repo/target/debug/deps/wsvd_batched-5084217a95d4d201.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_batched-5084217a95d4d201.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs Cargo.toml

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
