/root/repo/target/debug/deps/wsvd_batched-0f825e63a9305294.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-0f825e63a9305294.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-0f825e63a9305294.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
