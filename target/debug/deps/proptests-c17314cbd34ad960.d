/root/repo/target/debug/deps/proptests-c17314cbd34ad960.d: crates/batched/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c17314cbd34ad960.rmeta: crates/batched/tests/proptests.rs Cargo.toml

crates/batched/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
