/root/repo/target/debug/deps/repro-6894c86f5e00cad3.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6894c86f5e00cad3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
