/root/repo/target/debug/deps/wsvd_batched-949ed4922fe7c702.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-949ed4922fe7c702.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-949ed4922fe7c702.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
