/root/repo/target/debug/deps/proptests-47d07afc1ad4a6d6.d: crates/jacobi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-47d07afc1ad4a6d6: crates/jacobi/tests/proptests.rs

crates/jacobi/tests/proptests.rs:
