/root/repo/target/debug/deps/proptests-36cf8e6202f18525.d: crates/batched/tests/proptests.rs

/root/repo/target/debug/deps/proptests-36cf8e6202f18525: crates/batched/tests/proptests.rs

crates/batched/tests/proptests.rs:
