/root/repo/target/debug/deps/wcycle_svd-17d4ed8e53abbc67.d: src/lib.rs

/root/repo/target/debug/deps/wcycle_svd-17d4ed8e53abbc67: src/lib.rs

src/lib.rs:
