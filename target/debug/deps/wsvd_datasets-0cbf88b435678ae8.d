/root/repo/target/debug/deps/wsvd_datasets-0cbf88b435678ae8.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/debug/deps/wsvd_datasets-0cbf88b435678ae8: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
