/root/repo/target/debug/deps/wcycle_svd-4ce12688a36a8cfc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle_svd-4ce12688a36a8cfc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
