/root/repo/target/debug/deps/sanitizer_integration-f61b0bb7d12c57d7.d: tests/sanitizer_integration.rs

/root/repo/target/debug/deps/sanitizer_integration-f61b0bb7d12c57d7: tests/sanitizer_integration.rs

tests/sanitizer_integration.rs:
