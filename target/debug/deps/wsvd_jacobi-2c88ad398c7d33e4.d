/root/repo/target/debug/deps/wsvd_jacobi-2c88ad398c7d33e4.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/wsvd_jacobi-2c88ad398c7d33e4: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
