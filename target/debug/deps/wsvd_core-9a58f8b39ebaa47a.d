/root/repo/target/debug/deps/wsvd_core-9a58f8b39ebaa47a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-9a58f8b39ebaa47a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-9a58f8b39ebaa47a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/wcycle.rs:
