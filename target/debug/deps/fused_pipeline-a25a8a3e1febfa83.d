/root/repo/target/debug/deps/fused_pipeline-a25a8a3e1febfa83.d: tests/fused_pipeline.rs

/root/repo/target/debug/deps/fused_pipeline-a25a8a3e1febfa83: tests/fused_pipeline.rs

tests/fused_pipeline.rs:
