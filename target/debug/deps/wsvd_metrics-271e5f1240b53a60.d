/root/repo/target/debug/deps/wsvd_metrics-271e5f1240b53a60.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libwsvd_metrics-271e5f1240b53a60.rlib: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/libwsvd_metrics-271e5f1240b53a60.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
