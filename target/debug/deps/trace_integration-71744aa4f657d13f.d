/root/repo/target/debug/deps/trace_integration-71744aa4f657d13f.d: tests/trace_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_integration-71744aa4f657d13f.rmeta: tests/trace_integration.rs Cargo.toml

tests/trace_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
