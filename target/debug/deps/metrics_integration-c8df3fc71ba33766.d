/root/repo/target/debug/deps/metrics_integration-c8df3fc71ba33766.d: tests/metrics_integration.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_integration-c8df3fc71ba33766.rmeta: tests/metrics_integration.rs Cargo.toml

tests/metrics_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
