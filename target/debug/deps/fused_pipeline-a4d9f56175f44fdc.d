/root/repo/target/debug/deps/fused_pipeline-a4d9f56175f44fdc.d: tests/fused_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfused_pipeline-a4d9f56175f44fdc.rmeta: tests/fused_pipeline.rs Cargo.toml

tests/fused_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
