/root/repo/target/debug/deps/sanitizer_integration-ad145ab7577764b7.d: tests/sanitizer_integration.rs

/root/repo/target/debug/deps/sanitizer_integration-ad145ab7577764b7: tests/sanitizer_integration.rs

tests/sanitizer_integration.rs:
