/root/repo/target/debug/deps/wsvd_bench-db946ac699328a68.d: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_bench-db946ac699328a68.rmeta: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_apps.rs:
crates/bench/src/exp_baselines.rs:
crates/bench/src/exp_extensions.rs:
crates/bench/src/exp_kernels.rs:
crates/bench/src/exp_tailoring.rs:
crates/bench/src/metrics_report.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
