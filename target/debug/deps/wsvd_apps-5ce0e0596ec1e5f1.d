/root/repo/target/debug/deps/wsvd_apps-5ce0e0596ec1e5f1.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-5ce0e0596ec1e5f1.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-5ce0e0596ec1e5f1.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
