/root/repo/target/debug/deps/wsvd_baselines-9291186716e889fc.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/wsvd_baselines-9291186716e889fc: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
