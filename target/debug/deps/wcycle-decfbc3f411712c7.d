/root/repo/target/debug/deps/wcycle-decfbc3f411712c7.d: crates/bench/benches/wcycle.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle-decfbc3f411712c7.rmeta: crates/bench/benches/wcycle.rs Cargo.toml

crates/bench/benches/wcycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
