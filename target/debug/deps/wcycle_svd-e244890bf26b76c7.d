/root/repo/target/debug/deps/wcycle_svd-e244890bf26b76c7.d: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-e244890bf26b76c7.rlib: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-e244890bf26b76c7.rmeta: src/lib.rs

src/lib.rs:
