/root/repo/target/debug/deps/wsvd_bench_diff-05865dfa428a7657.d: crates/bench/src/bin/wsvd_bench_diff.rs

/root/repo/target/debug/deps/wsvd_bench_diff-05865dfa428a7657: crates/bench/src/bin/wsvd_bench_diff.rs

crates/bench/src/bin/wsvd_bench_diff.rs:
