/root/repo/target/debug/deps/wsvd_apps-7de6561773f31e0a.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/wsvd_apps-7de6561773f31e0a: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
