/root/repo/target/debug/deps/integration_wcycle-4a8c4ff05ec2b331.d: tests/integration_wcycle.rs

/root/repo/target/debug/deps/integration_wcycle-4a8c4ff05ec2b331: tests/integration_wcycle.rs

tests/integration_wcycle.rs:
