/root/repo/target/debug/deps/wsvd_baselines-d5f8cfa114340458.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-d5f8cfa114340458.rlib: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-d5f8cfa114340458.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
