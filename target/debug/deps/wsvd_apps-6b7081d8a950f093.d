/root/repo/target/debug/deps/wsvd_apps-6b7081d8a950f093.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_apps-6b7081d8a950f093.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
