/root/repo/target/debug/deps/wsvd_gpu_sim-b4f0e195ec31433b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/debug/deps/libwsvd_gpu_sim-b4f0e195ec31433b.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/debug/deps/libwsvd_gpu_sim-b4f0e195ec31433b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cluster.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/graph.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/sanitize.rs:
crates/gpu-sim/src/smem.rs:
