/root/repo/target/debug/deps/fused_pipeline-82c26f53af11d210.d: tests/fused_pipeline.rs

/root/repo/target/debug/deps/fused_pipeline-82c26f53af11d210: tests/fused_pipeline.rs

tests/fused_pipeline.rs:
