/root/repo/target/debug/deps/wsvd_batched-f690f445a56014bb.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-f690f445a56014bb.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-f690f445a56014bb.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
