/root/repo/target/debug/deps/sanitizer_integration-32852967d0ef1196.d: tests/sanitizer_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsanitizer_integration-32852967d0ef1196.rmeta: tests/sanitizer_integration.rs Cargo.toml

tests/sanitizer_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
