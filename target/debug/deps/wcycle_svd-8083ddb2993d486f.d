/root/repo/target/debug/deps/wcycle_svd-8083ddb2993d486f.d: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-8083ddb2993d486f.rlib: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-8083ddb2993d486f.rmeta: src/lib.rs

src/lib.rs:
