/root/repo/target/debug/deps/trace_integration-f53a04bd12cc8e44.d: tests/trace_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_integration-f53a04bd12cc8e44.rmeta: tests/trace_integration.rs Cargo.toml

tests/trace_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
