/root/repo/target/debug/deps/wsvd_gpu_sim-959a7fb9cfe1e615.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/debug/deps/wsvd_gpu_sim-959a7fb9cfe1e615: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cluster.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/graph.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/sanitize.rs:
crates/gpu-sim/src/smem.rs:
