/root/repo/target/debug/deps/wsvd_jacobi-adfbeb93b27f3d8e.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-adfbeb93b27f3d8e.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-adfbeb93b27f3d8e.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
