/root/repo/target/debug/deps/wcycle_svd-0c14288bb147a885.d: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-0c14288bb147a885.rlib: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-0c14288bb147a885.rmeta: src/lib.rs

src/lib.rs:
