/root/repo/target/debug/deps/property_tests-aba7c6901c0323e3.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-aba7c6901c0323e3: tests/property_tests.rs

tests/property_tests.rs:
