/root/repo/target/debug/deps/integration_wcycle-e2a04a838190250c.d: tests/integration_wcycle.rs

/root/repo/target/debug/deps/integration_wcycle-e2a04a838190250c: tests/integration_wcycle.rs

tests/integration_wcycle.rs:
