/root/repo/target/debug/deps/repro-2ad42f2a6dd73980.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2ad42f2a6dd73980: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
