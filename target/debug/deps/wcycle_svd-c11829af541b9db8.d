/root/repo/target/debug/deps/wcycle_svd-c11829af541b9db8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle_svd-c11829af541b9db8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
