/root/repo/target/debug/deps/repro-bed015d89d248425.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-bed015d89d248425.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
