/root/repo/target/debug/deps/repro-f72cc0e6dbad8080.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-f72cc0e6dbad8080: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
