/root/repo/target/debug/deps/wsvd_trace-f8a004c379ccc759.d: crates/trace/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_trace-f8a004c379ccc759.rmeta: crates/trace/src/lib.rs Cargo.toml

crates/trace/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
