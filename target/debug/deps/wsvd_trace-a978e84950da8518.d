/root/repo/target/debug/deps/wsvd_trace-a978e84950da8518.d: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-a978e84950da8518.rlib: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-a978e84950da8518.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
