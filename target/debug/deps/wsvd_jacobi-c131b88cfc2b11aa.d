/root/repo/target/debug/deps/wsvd_jacobi-c131b88cfc2b11aa.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-c131b88cfc2b11aa.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/debug/deps/libwsvd_jacobi-c131b88cfc2b11aa.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
