/root/repo/target/debug/deps/wsvd_bench_diff-41ce18e19dc2fa38.d: crates/bench/src/bin/wsvd_bench_diff.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_bench_diff-41ce18e19dc2fa38.rmeta: crates/bench/src/bin/wsvd_bench_diff.rs Cargo.toml

crates/bench/src/bin/wsvd_bench_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
