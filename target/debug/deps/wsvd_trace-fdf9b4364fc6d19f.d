/root/repo/target/debug/deps/wsvd_trace-fdf9b4364fc6d19f.d: crates/trace/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_trace-fdf9b4364fc6d19f.rmeta: crates/trace/src/lib.rs Cargo.toml

crates/trace/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
