/root/repo/target/debug/deps/integration_baselines-feb76fbdde0c590e.d: tests/integration_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_baselines-feb76fbdde0c590e.rmeta: tests/integration_baselines.rs Cargo.toml

tests/integration_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
