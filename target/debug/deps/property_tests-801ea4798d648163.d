/root/repo/target/debug/deps/property_tests-801ea4798d648163.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-801ea4798d648163: tests/property_tests.rs

tests/property_tests.rs:
