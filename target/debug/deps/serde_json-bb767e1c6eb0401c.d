/root/repo/target/debug/deps/serde_json-bb767e1c6eb0401c.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-bb767e1c6eb0401c: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
