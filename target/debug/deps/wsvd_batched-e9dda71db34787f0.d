/root/repo/target/debug/deps/wsvd_batched-e9dda71db34787f0.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-e9dda71db34787f0.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/debug/deps/libwsvd_batched-e9dda71db34787f0.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
