/root/repo/target/debug/deps/wsvd_apps-fc246111612a1b58.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-fc246111612a1b58.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-fc246111612a1b58.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
