/root/repo/target/debug/deps/trace_integration-f8054725e42207b5.d: tests/trace_integration.rs

/root/repo/target/debug/deps/trace_integration-f8054725e42207b5: tests/trace_integration.rs

tests/trace_integration.rs:
