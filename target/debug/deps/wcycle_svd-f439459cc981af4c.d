/root/repo/target/debug/deps/wcycle_svd-f439459cc981af4c.d: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-f439459cc981af4c.rlib: src/lib.rs

/root/repo/target/debug/deps/libwcycle_svd-f439459cc981af4c.rmeta: src/lib.rs

src/lib.rs:
