/root/repo/target/debug/deps/proptests-56e4953fdf2772c0.d: crates/linalg/tests/proptests.rs

/root/repo/target/debug/deps/proptests-56e4953fdf2772c0: crates/linalg/tests/proptests.rs

crates/linalg/tests/proptests.rs:
