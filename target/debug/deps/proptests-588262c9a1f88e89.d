/root/repo/target/debug/deps/proptests-588262c9a1f88e89.d: crates/batched/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-588262c9a1f88e89.rmeta: crates/batched/tests/proptests.rs Cargo.toml

crates/batched/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
