/root/repo/target/debug/deps/wsvd_apps-1ac338153ebb5385.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-1ac338153ebb5385.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-1ac338153ebb5385.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
