/root/repo/target/debug/deps/wsvd_jacobi-94054a9718c5eb4f.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_jacobi-94054a9718c5eb4f.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs Cargo.toml

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
