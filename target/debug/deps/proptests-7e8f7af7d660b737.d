/root/repo/target/debug/deps/proptests-7e8f7af7d660b737.d: crates/jacobi/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7e8f7af7d660b737.rmeta: crates/jacobi/tests/proptests.rs Cargo.toml

crates/jacobi/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
