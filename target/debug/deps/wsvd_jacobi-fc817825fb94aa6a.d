/root/repo/target/debug/deps/wsvd_jacobi-fc817825fb94aa6a.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/debug/deps/libwsvd_jacobi-fc817825fb94aa6a.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/debug/deps/libwsvd_jacobi-fc817825fb94aa6a.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
