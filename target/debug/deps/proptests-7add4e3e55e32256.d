/root/repo/target/debug/deps/proptests-7add4e3e55e32256.d: crates/jacobi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7add4e3e55e32256: crates/jacobi/tests/proptests.rs

crates/jacobi/tests/proptests.rs:
