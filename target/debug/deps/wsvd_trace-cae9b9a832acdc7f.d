/root/repo/target/debug/deps/wsvd_trace-cae9b9a832acdc7f.d: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-cae9b9a832acdc7f.rlib: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-cae9b9a832acdc7f.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
