/root/repo/target/debug/deps/wsvd_trace-27fd4ef61425082d.d: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-27fd4ef61425082d.rlib: crates/trace/src/lib.rs

/root/repo/target/debug/deps/libwsvd_trace-27fd4ef61425082d.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
