/root/repo/target/debug/deps/wsvd_metrics-87d0bc58e21092a1.d: crates/metrics/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_metrics-87d0bc58e21092a1.rmeta: crates/metrics/src/lib.rs Cargo.toml

crates/metrics/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
