/root/repo/target/debug/deps/wcycle_svd-0b94fbc8da7e7c58.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle_svd-0b94fbc8da7e7c58.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
