/root/repo/target/debug/deps/wsvd_bench-fc0bebff29b6c8e9.d: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs

/root/repo/target/debug/deps/wsvd_bench-fc0bebff29b6c8e9: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_apps.rs:
crates/bench/src/exp_baselines.rs:
crates/bench/src/exp_extensions.rs:
crates/bench/src/exp_kernels.rs:
crates/bench/src/exp_tailoring.rs:
crates/bench/src/metrics_report.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
