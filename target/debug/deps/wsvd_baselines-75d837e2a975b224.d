/root/repo/target/debug/deps/wsvd_baselines-75d837e2a975b224.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-75d837e2a975b224.rlib: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-75d837e2a975b224.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
