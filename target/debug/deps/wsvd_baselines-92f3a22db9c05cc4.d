/root/repo/target/debug/deps/wsvd_baselines-92f3a22db9c05cc4.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_baselines-92f3a22db9c05cc4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
