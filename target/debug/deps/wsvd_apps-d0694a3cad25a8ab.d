/root/repo/target/debug/deps/wsvd_apps-d0694a3cad25a8ab.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/wsvd_apps-d0694a3cad25a8ab: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
