/root/repo/target/debug/deps/wsvd_datasets-b787de8388405c7f.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs Cargo.toml

/root/repo/target/debug/deps/libwsvd_datasets-b787de8388405c7f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
