/root/repo/target/debug/deps/fused_pipeline-be1eecb246102bc8.d: tests/fused_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfused_pipeline-be1eecb246102bc8.rmeta: tests/fused_pipeline.rs Cargo.toml

tests/fused_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
