/root/repo/target/debug/deps/wsvd_baselines-0fd6b306018a097d.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-0fd6b306018a097d.rlib: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/debug/deps/libwsvd_baselines-0fd6b306018a097d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
