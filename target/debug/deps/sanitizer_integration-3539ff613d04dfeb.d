/root/repo/target/debug/deps/sanitizer_integration-3539ff613d04dfeb.d: tests/sanitizer_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsanitizer_integration-3539ff613d04dfeb.rmeta: tests/sanitizer_integration.rs Cargo.toml

tests/sanitizer_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
