/root/repo/target/debug/deps/wsvd_apps-b8d48237a68d8c43.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-b8d48237a68d8c43.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/debug/deps/libwsvd_apps-b8d48237a68d8c43.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
