/root/repo/target/debug/deps/wsvd_metrics-080fa594ddc797e4.d: crates/metrics/src/lib.rs

/root/repo/target/debug/deps/wsvd_metrics-080fa594ddc797e4: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
