/root/repo/target/debug/deps/wsvd_core-7e89150ab851207f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-7e89150ab851207f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-7e89150ab851207f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/wcycle.rs:
