/root/repo/target/debug/deps/wsvd_core-5425391be3a24620.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/wsvd_core-5425391be3a24620: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
