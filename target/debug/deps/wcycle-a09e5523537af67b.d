/root/repo/target/debug/deps/wcycle-a09e5523537af67b.d: crates/bench/benches/wcycle.rs Cargo.toml

/root/repo/target/debug/deps/libwcycle-a09e5523537af67b.rmeta: crates/bench/benches/wcycle.rs Cargo.toml

crates/bench/benches/wcycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
