/root/repo/target/debug/deps/wsvd_core-e31a7789e6559b38.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-e31a7789e6559b38.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/debug/deps/libwsvd_core-e31a7789e6559b38.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
