/root/repo/target/debug/deps/integration_baselines-4851cca3bc4b5af5.d: tests/integration_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_baselines-4851cca3bc4b5af5.rmeta: tests/integration_baselines.rs Cargo.toml

tests/integration_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
