/root/repo/target/debug/deps/wcycle_svd-42d1a381e8ac6117.d: src/lib.rs

/root/repo/target/debug/deps/wcycle_svd-42d1a381e8ac6117: src/lib.rs

src/lib.rs:
