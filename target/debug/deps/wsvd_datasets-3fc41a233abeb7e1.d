/root/repo/target/debug/deps/wsvd_datasets-3fc41a233abeb7e1.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/debug/deps/libwsvd_datasets-3fc41a233abeb7e1.rlib: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/debug/deps/libwsvd_datasets-3fc41a233abeb7e1.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
