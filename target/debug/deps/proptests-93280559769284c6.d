/root/repo/target/debug/deps/proptests-93280559769284c6.d: crates/linalg/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-93280559769284c6.rmeta: crates/linalg/tests/proptests.rs Cargo.toml

crates/linalg/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
