/root/repo/target/debug/libwsvd_metrics.rlib: /root/repo/crates/metrics/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs /root/repo/vendor/serde_json/src/lib.rs
