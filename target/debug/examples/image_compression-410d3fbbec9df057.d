/root/repo/target/debug/examples/image_compression-410d3fbbec9df057.d: examples/image_compression.rs Cargo.toml

/root/repo/target/debug/examples/libimage_compression-410d3fbbec9df057.rmeta: examples/image_compression.rs Cargo.toml

examples/image_compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
