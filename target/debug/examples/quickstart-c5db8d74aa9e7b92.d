/root/repo/target/debug/examples/quickstart-c5db8d74aa9e7b92.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c5db8d74aa9e7b92: examples/quickstart.rs

examples/quickstart.rs:
