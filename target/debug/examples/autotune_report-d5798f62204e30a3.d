/root/repo/target/debug/examples/autotune_report-d5798f62204e30a3.d: examples/autotune_report.rs

/root/repo/target/debug/examples/autotune_report-d5798f62204e30a3: examples/autotune_report.rs

examples/autotune_report.rs:
