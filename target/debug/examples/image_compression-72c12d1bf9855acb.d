/root/repo/target/debug/examples/image_compression-72c12d1bf9855acb.d: examples/image_compression.rs

/root/repo/target/debug/examples/image_compression-72c12d1bf9855acb: examples/image_compression.rs

examples/image_compression.rs:
