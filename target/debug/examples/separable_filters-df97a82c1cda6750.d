/root/repo/target/debug/examples/separable_filters-df97a82c1cda6750.d: examples/separable_filters.rs Cargo.toml

/root/repo/target/debug/examples/libseparable_filters-df97a82c1cda6750.rmeta: examples/separable_filters.rs Cargo.toml

examples/separable_filters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
