/root/repo/target/debug/examples/separable_filters-24ccc29194ca7f32.d: examples/separable_filters.rs Cargo.toml

/root/repo/target/debug/examples/libseparable_filters-24ccc29194ca7f32.rmeta: examples/separable_filters.rs Cargo.toml

examples/separable_filters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
