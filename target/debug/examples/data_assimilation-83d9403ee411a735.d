/root/repo/target/debug/examples/data_assimilation-83d9403ee411a735.d: examples/data_assimilation.rs

/root/repo/target/debug/examples/data_assimilation-83d9403ee411a735: examples/data_assimilation.rs

examples/data_assimilation.rs:
