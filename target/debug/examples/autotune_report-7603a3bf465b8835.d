/root/repo/target/debug/examples/autotune_report-7603a3bf465b8835.d: examples/autotune_report.rs

/root/repo/target/debug/examples/autotune_report-7603a3bf465b8835: examples/autotune_report.rs

examples/autotune_report.rs:
