/root/repo/target/debug/examples/quickstart-36aad5474843ca60.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-36aad5474843ca60: examples/quickstart.rs

examples/quickstart.rs:
