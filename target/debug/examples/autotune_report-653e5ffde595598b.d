/root/repo/target/debug/examples/autotune_report-653e5ffde595598b.d: examples/autotune_report.rs

/root/repo/target/debug/examples/autotune_report-653e5ffde595598b: examples/autotune_report.rs

examples/autotune_report.rs:
