/root/repo/target/debug/examples/data_assimilation-730bf572650ae6a3.d: examples/data_assimilation.rs Cargo.toml

/root/repo/target/debug/examples/libdata_assimilation-730bf572650ae6a3.rmeta: examples/data_assimilation.rs Cargo.toml

examples/data_assimilation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
