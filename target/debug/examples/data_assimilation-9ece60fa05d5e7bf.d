/root/repo/target/debug/examples/data_assimilation-9ece60fa05d5e7bf.d: examples/data_assimilation.rs

/root/repo/target/debug/examples/data_assimilation-9ece60fa05d5e7bf: examples/data_assimilation.rs

examples/data_assimilation.rs:
