/root/repo/target/debug/examples/data_assimilation-b48bf6d5621da34d.d: examples/data_assimilation.rs

/root/repo/target/debug/examples/data_assimilation-b48bf6d5621da34d: examples/data_assimilation.rs

examples/data_assimilation.rs:
