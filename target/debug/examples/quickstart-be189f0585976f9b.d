/root/repo/target/debug/examples/quickstart-be189f0585976f9b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-be189f0585976f9b: examples/quickstart.rs

examples/quickstart.rs:
