/root/repo/target/debug/examples/quickstart-10b2540597d92f0b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-10b2540597d92f0b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
