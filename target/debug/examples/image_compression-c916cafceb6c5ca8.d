/root/repo/target/debug/examples/image_compression-c916cafceb6c5ca8.d: examples/image_compression.rs Cargo.toml

/root/repo/target/debug/examples/libimage_compression-c916cafceb6c5ca8.rmeta: examples/image_compression.rs Cargo.toml

examples/image_compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
