/root/repo/target/debug/examples/image_compression-23b51da208aaed05.d: examples/image_compression.rs

/root/repo/target/debug/examples/image_compression-23b51da208aaed05: examples/image_compression.rs

examples/image_compression.rs:
