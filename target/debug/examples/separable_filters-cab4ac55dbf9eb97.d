/root/repo/target/debug/examples/separable_filters-cab4ac55dbf9eb97.d: examples/separable_filters.rs

/root/repo/target/debug/examples/separable_filters-cab4ac55dbf9eb97: examples/separable_filters.rs

examples/separable_filters.rs:
