/root/repo/target/debug/examples/image_compression-35f729a52fb26438.d: examples/image_compression.rs

/root/repo/target/debug/examples/image_compression-35f729a52fb26438: examples/image_compression.rs

examples/image_compression.rs:
