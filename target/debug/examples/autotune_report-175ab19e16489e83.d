/root/repo/target/debug/examples/autotune_report-175ab19e16489e83.d: examples/autotune_report.rs Cargo.toml

/root/repo/target/debug/examples/libautotune_report-175ab19e16489e83.rmeta: examples/autotune_report.rs Cargo.toml

examples/autotune_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
