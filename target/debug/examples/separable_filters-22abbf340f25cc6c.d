/root/repo/target/debug/examples/separable_filters-22abbf340f25cc6c.d: examples/separable_filters.rs

/root/repo/target/debug/examples/separable_filters-22abbf340f25cc6c: examples/separable_filters.rs

examples/separable_filters.rs:
