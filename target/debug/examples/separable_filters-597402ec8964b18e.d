/root/repo/target/debug/examples/separable_filters-597402ec8964b18e.d: examples/separable_filters.rs

/root/repo/target/debug/examples/separable_filters-597402ec8964b18e: examples/separable_filters.rs

examples/separable_filters.rs:
