/root/repo/target/release/examples/image_compression-837c4d5b5e5538c1.d: examples/image_compression.rs

/root/repo/target/release/examples/image_compression-837c4d5b5e5538c1: examples/image_compression.rs

examples/image_compression.rs:
