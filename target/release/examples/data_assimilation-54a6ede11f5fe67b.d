/root/repo/target/release/examples/data_assimilation-54a6ede11f5fe67b.d: examples/data_assimilation.rs

/root/repo/target/release/examples/data_assimilation-54a6ede11f5fe67b: examples/data_assimilation.rs

examples/data_assimilation.rs:
