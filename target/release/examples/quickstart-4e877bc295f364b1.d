/root/repo/target/release/examples/quickstart-4e877bc295f364b1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4e877bc295f364b1: examples/quickstart.rs

examples/quickstart.rs:
