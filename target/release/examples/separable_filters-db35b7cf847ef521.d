/root/repo/target/release/examples/separable_filters-db35b7cf847ef521.d: examples/separable_filters.rs

/root/repo/target/release/examples/separable_filters-db35b7cf847ef521: examples/separable_filters.rs

examples/separable_filters.rs:
