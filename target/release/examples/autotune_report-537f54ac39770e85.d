/root/repo/target/release/examples/autotune_report-537f54ac39770e85.d: examples/autotune_report.rs

/root/repo/target/release/examples/autotune_report-537f54ac39770e85: examples/autotune_report.rs

examples/autotune_report.rs:
