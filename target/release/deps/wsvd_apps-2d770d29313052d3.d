/root/repo/target/release/deps/wsvd_apps-2d770d29313052d3.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-2d770d29313052d3.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-2d770d29313052d3.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
