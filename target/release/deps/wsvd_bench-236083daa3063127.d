/root/repo/target/release/deps/wsvd_bench-236083daa3063127.d: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libwsvd_bench-236083daa3063127.rlib: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libwsvd_bench-236083daa3063127.rmeta: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/metrics_report.rs crates/bench/src/report.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_apps.rs:
crates/bench/src/exp_baselines.rs:
crates/bench/src/exp_extensions.rs:
crates/bench/src/exp_kernels.rs:
crates/bench/src/exp_tailoring.rs:
crates/bench/src/metrics_report.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
