/root/repo/target/release/deps/wsvd_batched-1ba918d022d795d7.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/release/deps/libwsvd_batched-1ba918d022d795d7.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/release/deps/libwsvd_batched-1ba918d022d795d7.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
