/root/repo/target/release/deps/wsvd_baselines-0b0f1902dd8a1232.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/release/deps/libwsvd_baselines-0b0f1902dd8a1232.rlib: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/release/deps/libwsvd_baselines-0b0f1902dd8a1232.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
