/root/repo/target/release/deps/proptests-323648b89e3aa323.d: crates/jacobi/tests/proptests.rs

/root/repo/target/release/deps/proptests-323648b89e3aa323: crates/jacobi/tests/proptests.rs

crates/jacobi/tests/proptests.rs:
