/root/repo/target/release/deps/wsvd_jacobi-748f992e55bb9ee6.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/release/deps/libwsvd_jacobi-748f992e55bb9ee6.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/release/deps/libwsvd_jacobi-748f992e55bb9ee6.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
