/root/repo/target/release/deps/zz_probe-9dd243de51f288d5.d: tests/zz_probe.rs

/root/repo/target/release/deps/zz_probe-9dd243de51f288d5: tests/zz_probe.rs

tests/zz_probe.rs:
