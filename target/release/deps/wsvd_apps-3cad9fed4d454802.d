/root/repo/target/release/deps/wsvd_apps-3cad9fed4d454802.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/wsvd_apps-3cad9fed4d454802: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
