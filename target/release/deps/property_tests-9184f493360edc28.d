/root/repo/target/release/deps/property_tests-9184f493360edc28.d: tests/property_tests.rs

/root/repo/target/release/deps/property_tests-9184f493360edc28: tests/property_tests.rs

tests/property_tests.rs:
