/root/repo/target/release/deps/proptest-d09eda8991f34e85.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-d09eda8991f34e85: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
