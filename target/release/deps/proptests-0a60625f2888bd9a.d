/root/repo/target/release/deps/proptests-0a60625f2888bd9a.d: crates/batched/tests/proptests.rs

/root/repo/target/release/deps/proptests-0a60625f2888bd9a: crates/batched/tests/proptests.rs

crates/batched/tests/proptests.rs:
