/root/repo/target/release/deps/wcycle_svd-289048623451b63f.d: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-289048623451b63f.rlib: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-289048623451b63f.rmeta: src/lib.rs

src/lib.rs:
