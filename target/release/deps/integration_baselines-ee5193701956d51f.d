/root/repo/target/release/deps/integration_baselines-ee5193701956d51f.d: tests/integration_baselines.rs

/root/repo/target/release/deps/integration_baselines-ee5193701956d51f: tests/integration_baselines.rs

tests/integration_baselines.rs:
