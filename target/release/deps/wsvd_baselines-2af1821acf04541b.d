/root/repo/target/release/deps/wsvd_baselines-2af1821acf04541b.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/release/deps/wsvd_baselines-2af1821acf04541b: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
