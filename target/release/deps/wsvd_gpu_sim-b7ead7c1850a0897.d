/root/repo/target/release/deps/wsvd_gpu_sim-b7ead7c1850a0897.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/release/deps/wsvd_gpu_sim-b7ead7c1850a0897: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cluster.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/sanitize.rs:
crates/gpu-sim/src/smem.rs:
