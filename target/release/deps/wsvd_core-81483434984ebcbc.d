/root/repo/target/release/deps/wsvd_core-81483434984ebcbc.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/release/deps/wsvd_core-81483434984ebcbc: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
