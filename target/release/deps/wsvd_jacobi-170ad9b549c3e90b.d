/root/repo/target/release/deps/wsvd_jacobi-170ad9b549c3e90b.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/release/deps/libwsvd_jacobi-170ad9b549c3e90b.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/release/deps/libwsvd_jacobi-170ad9b549c3e90b.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
