/root/repo/target/release/deps/wsvd_apps-2a579b0ba714cd0a.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-2a579b0ba714cd0a.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-2a579b0ba714cd0a.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
