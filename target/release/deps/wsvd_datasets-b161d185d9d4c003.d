/root/repo/target/release/deps/wsvd_datasets-b161d185d9d4c003.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/release/deps/libwsvd_datasets-b161d185d9d4c003.rlib: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/release/deps/libwsvd_datasets-b161d185d9d4c003.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
