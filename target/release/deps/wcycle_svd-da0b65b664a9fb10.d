/root/repo/target/release/deps/wcycle_svd-da0b65b664a9fb10.d: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-da0b65b664a9fb10.rlib: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-da0b65b664a9fb10.rmeta: src/lib.rs

src/lib.rs:
