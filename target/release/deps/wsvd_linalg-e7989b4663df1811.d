/root/repo/target/release/deps/wsvd_linalg-e7989b4663df1811.d: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs

/root/repo/target/release/deps/wsvd_linalg-e7989b4663df1811: crates/linalg/src/lib.rs crates/linalg/src/bidiag_svd.rs crates/linalg/src/cholesky.rs crates/linalg/src/gemm.rs crates/linalg/src/generate.rs crates/linalg/src/givens.rs crates/linalg/src/householder.rs crates/linalg/src/lowp.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/svd.rs crates/linalg/src/verify.rs

crates/linalg/src/lib.rs:
crates/linalg/src/bidiag_svd.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/generate.rs:
crates/linalg/src/givens.rs:
crates/linalg/src/householder.rs:
crates/linalg/src/lowp.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/verify.rs:
