/root/repo/target/release/deps/wcycle_svd-cb12c5c911f50dd9.d: src/lib.rs

/root/repo/target/release/deps/wcycle_svd-cb12c5c911f50dd9: src/lib.rs

src/lib.rs:
