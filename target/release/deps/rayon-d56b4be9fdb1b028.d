/root/repo/target/release/deps/rayon-d56b4be9fdb1b028.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-d56b4be9fdb1b028: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
