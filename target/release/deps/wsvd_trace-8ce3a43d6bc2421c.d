/root/repo/target/release/deps/wsvd_trace-8ce3a43d6bc2421c.d: crates/trace/src/lib.rs

/root/repo/target/release/deps/libwsvd_trace-8ce3a43d6bc2421c.rlib: crates/trace/src/lib.rs

/root/repo/target/release/deps/libwsvd_trace-8ce3a43d6bc2421c.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
