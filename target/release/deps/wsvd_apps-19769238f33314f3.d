/root/repo/target/release/deps/wsvd_apps-19769238f33314f3.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-19769238f33314f3.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-19769238f33314f3.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
