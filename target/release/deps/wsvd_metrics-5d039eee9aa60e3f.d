/root/repo/target/release/deps/wsvd_metrics-5d039eee9aa60e3f.d: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libwsvd_metrics-5d039eee9aa60e3f.rlib: crates/metrics/src/lib.rs

/root/repo/target/release/deps/libwsvd_metrics-5d039eee9aa60e3f.rmeta: crates/metrics/src/lib.rs

crates/metrics/src/lib.rs:
