/root/repo/target/release/deps/repro-d86f985ccd9e291b.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d86f985ccd9e291b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
