/root/repo/target/release/deps/repro-de1a399f9a9dc2d2.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-de1a399f9a9dc2d2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
