/root/repo/target/release/deps/proptests-a637f32d255ca1de.d: crates/linalg/tests/proptests.rs

/root/repo/target/release/deps/proptests-a637f32d255ca1de: crates/linalg/tests/proptests.rs

crates/linalg/tests/proptests.rs:
