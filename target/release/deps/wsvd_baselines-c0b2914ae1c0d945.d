/root/repo/target/release/deps/wsvd_baselines-c0b2914ae1c0d945.d: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/release/deps/libwsvd_baselines-c0b2914ae1c0d945.rlib: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

/root/repo/target/release/deps/libwsvd_baselines-c0b2914ae1c0d945.rmeta: crates/baselines/src/lib.rs crates/baselines/src/block.rs crates/baselines/src/cusolver.rs crates/baselines/src/dp.rs crates/baselines/src/magma.rs

crates/baselines/src/lib.rs:
crates/baselines/src/block.rs:
crates/baselines/src/cusolver.rs:
crates/baselines/src/dp.rs:
crates/baselines/src/magma.rs:
