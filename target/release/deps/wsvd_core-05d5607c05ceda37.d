/root/repo/target/release/deps/wsvd_core-05d5607c05ceda37.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/release/deps/libwsvd_core-05d5607c05ceda37.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

/root/repo/target/release/deps/libwsvd_core-05d5607c05ceda37.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/wcycle.rs:
