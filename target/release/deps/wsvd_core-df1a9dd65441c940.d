/root/repo/target/release/deps/wsvd_core-df1a9dd65441c940.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/release/deps/libwsvd_core-df1a9dd65441c940.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

/root/repo/target/release/deps/libwsvd_core-df1a9dd65441c940.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/stats.rs crates/core/src/verify.rs crates/core/src/wcycle.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/stats.rs:
crates/core/src/verify.rs:
crates/core/src/wcycle.rs:
