/root/repo/target/release/deps/wsvd_datasets-cb322ab6455b802b.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/release/deps/libwsvd_datasets-cb322ab6455b802b.rlib: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/release/deps/libwsvd_datasets-cb322ab6455b802b.rmeta: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
