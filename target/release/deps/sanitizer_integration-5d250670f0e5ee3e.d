/root/repo/target/release/deps/sanitizer_integration-5d250670f0e5ee3e.d: tests/sanitizer_integration.rs

/root/repo/target/release/deps/sanitizer_integration-5d250670f0e5ee3e: tests/sanitizer_integration.rs

tests/sanitizer_integration.rs:
