/root/repo/target/release/deps/trace_integration-35bb92766df6fe3b.d: tests/trace_integration.rs

/root/repo/target/release/deps/trace_integration-35bb92766df6fe3b: tests/trace_integration.rs

tests/trace_integration.rs:
