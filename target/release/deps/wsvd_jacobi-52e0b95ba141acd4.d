/root/repo/target/release/deps/wsvd_jacobi-52e0b95ba141acd4.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/release/deps/libwsvd_jacobi-52e0b95ba141acd4.rlib: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

/root/repo/target/release/deps/libwsvd_jacobi-52e0b95ba141acd4.rmeta: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
