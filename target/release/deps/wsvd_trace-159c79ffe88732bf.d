/root/repo/target/release/deps/wsvd_trace-159c79ffe88732bf.d: crates/trace/src/lib.rs

/root/repo/target/release/deps/wsvd_trace-159c79ffe88732bf: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
