/root/repo/target/release/deps/repro-397219290dcfb65f.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-397219290dcfb65f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
