/root/repo/target/release/deps/wsvd_jacobi-90bc1d16297d45bf.d: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

/root/repo/target/release/deps/wsvd_jacobi-90bc1d16297d45bf: crates/jacobi/src/lib.rs crates/jacobi/src/batch.rs crates/jacobi/src/evd.rs crates/jacobi/src/fits.rs crates/jacobi/src/onesided.rs crates/jacobi/src/ordering.rs crates/jacobi/src/verify.rs

crates/jacobi/src/lib.rs:
crates/jacobi/src/batch.rs:
crates/jacobi/src/evd.rs:
crates/jacobi/src/fits.rs:
crates/jacobi/src/onesided.rs:
crates/jacobi/src/ordering.rs:
crates/jacobi/src/verify.rs:
