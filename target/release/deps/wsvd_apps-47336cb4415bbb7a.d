/root/repo/target/release/deps/wsvd_apps-47336cb4415bbb7a.d: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-47336cb4415bbb7a.rlib: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

/root/repo/target/release/deps/libwsvd_apps-47336cb4415bbb7a.rmeta: crates/apps/src/lib.rs crates/apps/src/assimilation.rs crates/apps/src/compression.rs crates/apps/src/filters.rs

crates/apps/src/lib.rs:
crates/apps/src/assimilation.rs:
crates/apps/src/compression.rs:
crates/apps/src/filters.rs:
