/root/repo/target/release/deps/wsvd_datasets-77778cae33fee480.d: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

/root/repo/target/release/deps/wsvd_datasets-77778cae33fee480: crates/datasets/src/lib.rs crates/datasets/src/groups.rs crates/datasets/src/named.rs

crates/datasets/src/lib.rs:
crates/datasets/src/groups.rs:
crates/datasets/src/named.rs:
