/root/repo/target/release/deps/wcycle_svd-50f5076c77dd7485.d: src/lib.rs

/root/repo/target/release/deps/wcycle_svd-50f5076c77dd7485: src/lib.rs

src/lib.rs:
