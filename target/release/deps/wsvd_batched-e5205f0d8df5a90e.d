/root/repo/target/release/deps/wsvd_batched-e5205f0d8df5a90e.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/release/deps/libwsvd_batched-e5205f0d8df5a90e.rlib: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/release/deps/libwsvd_batched-e5205f0d8df5a90e.rmeta: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
