/root/repo/target/release/deps/wcycle_svd-840557498c639471.d: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-840557498c639471.rlib: src/lib.rs

/root/repo/target/release/deps/libwcycle_svd-840557498c639471.rmeta: src/lib.rs

src/lib.rs:
