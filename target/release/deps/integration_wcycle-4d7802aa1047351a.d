/root/repo/target/release/deps/integration_wcycle-4d7802aa1047351a.d: tests/integration_wcycle.rs

/root/repo/target/release/deps/integration_wcycle-4d7802aa1047351a: tests/integration_wcycle.rs

tests/integration_wcycle.rs:
