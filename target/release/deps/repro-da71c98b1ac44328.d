/root/repo/target/release/deps/repro-da71c98b1ac44328.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-da71c98b1ac44328: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
