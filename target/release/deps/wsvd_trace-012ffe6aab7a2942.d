/root/repo/target/release/deps/wsvd_trace-012ffe6aab7a2942.d: crates/trace/src/lib.rs

/root/repo/target/release/deps/libwsvd_trace-012ffe6aab7a2942.rlib: crates/trace/src/lib.rs

/root/repo/target/release/deps/libwsvd_trace-012ffe6aab7a2942.rmeta: crates/trace/src/lib.rs

crates/trace/src/lib.rs:
