/root/repo/target/release/deps/wsvd_bench_diff-c19fc1c1012c4384.d: crates/bench/src/bin/wsvd_bench_diff.rs

/root/repo/target/release/deps/wsvd_bench_diff-c19fc1c1012c4384: crates/bench/src/bin/wsvd_bench_diff.rs

crates/bench/src/bin/wsvd_bench_diff.rs:
