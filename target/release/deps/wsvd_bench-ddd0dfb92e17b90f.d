/root/repo/target/release/deps/wsvd_bench-ddd0dfb92e17b90f.d: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/report.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libwsvd_bench-ddd0dfb92e17b90f.rlib: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/report.rs crates/bench/src/scale.rs

/root/repo/target/release/deps/libwsvd_bench-ddd0dfb92e17b90f.rmeta: crates/bench/src/lib.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_apps.rs crates/bench/src/exp_baselines.rs crates/bench/src/exp_extensions.rs crates/bench/src/exp_kernels.rs crates/bench/src/exp_tailoring.rs crates/bench/src/report.rs crates/bench/src/scale.rs

crates/bench/src/lib.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_apps.rs:
crates/bench/src/exp_baselines.rs:
crates/bench/src/exp_extensions.rs:
crates/bench/src/exp_kernels.rs:
crates/bench/src/exp_tailoring.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
