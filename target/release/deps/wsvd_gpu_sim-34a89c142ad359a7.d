/root/repo/target/release/deps/wsvd_gpu_sim-34a89c142ad359a7.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/release/deps/libwsvd_gpu_sim-34a89c142ad359a7.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

/root/repo/target/release/deps/libwsvd_gpu_sim-34a89c142ad359a7.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cluster.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/graph.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/sanitize.rs crates/gpu-sim/src/smem.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cluster.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/graph.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/sanitize.rs:
crates/gpu-sim/src/smem.rs:
