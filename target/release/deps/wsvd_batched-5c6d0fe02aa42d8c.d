/root/repo/target/release/deps/wsvd_batched-5c6d0fe02aa42d8c.d: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

/root/repo/target/release/deps/wsvd_batched-5c6d0fe02aa42d8c: crates/batched/src/lib.rs crates/batched/src/alpha.rs crates/batched/src/autotune.rs crates/batched/src/gemm.rs crates/batched/src/models.rs

crates/batched/src/lib.rs:
crates/batched/src/alpha.rs:
crates/batched/src/autotune.rs:
crates/batched/src/gemm.rs:
crates/batched/src/models.rs:
