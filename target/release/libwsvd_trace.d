/root/repo/target/release/libwsvd_trace.rlib: /root/repo/crates/trace/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs /root/repo/vendor/serde_json/src/lib.rs
