//! Quickstart: decompose a mixed-size batch with the W-cycle SVD and verify
//! the factors.
//!
//! Run with: `cargo run --release --example quickstart`

use wcycle_svd::gpu::{Gpu, V100};
use wcycle_svd::linalg::generate::{random_uniform, with_spectrum};
use wcycle_svd::linalg::verify::orthonormality_error;
use wcycle_svd::{wcycle_svd, WCycleConfig};

fn main() {
    // A simulated Tesla V100 — the paper's primary platform. All times
    // reported below are *simulated* seconds from its cost model.
    let gpu = Gpu::new(V100);

    // A batch with deliberately mixed shapes: the situation the W-cycle's
    // size-oblivious design is built for.
    let batch = vec![
        random_uniform(16, 16, 1),                     // tiny: Level-0 SM kernel
        random_uniform(100, 100, 2),                   // medium: block rotations
        random_uniform(24, 72, 3),                     // wide: transpose trick
        with_spectrum(64, 32, &known_spectrum(32), 4), // known singular values
    ];

    let out = wcycle_svd(&gpu, &batch, &WCycleConfig::default()).expect("decomposition failed");

    println!("decomposed {} matrices", out.results.len());
    for (k, (a, r)) in batch.iter().zip(&out.results).enumerate() {
        println!(
            "  #{k}: {:>3}x{:<3} sigma_max = {:>8.4}  sigma_min = {:>10.4e}  sweeps = {}  U-orth = {:.1e}",
            a.rows(),
            a.cols(),
            r.sigma.first().unwrap(),
            r.sigma.last().unwrap(),
            r.sweeps,
            orthonormality_error(&r.u),
        );
    }

    // The fourth matrix was built with spectrum 32, 31, ..., 1.
    let got = &out.results[3].sigma;
    let worst = got
        .iter()
        .zip(known_spectrum(32))
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!("known-spectrum recovery error: {worst:.2e}");
    assert!(worst < 1e-9, "spectrum not recovered");

    println!("\nworkflow statistics: {:?}", out.stats.widths_per_level);
    println!(
        "level-0 SM SVDs: {}, SM SVD blocks: {}, SM EVD blocks: {}, recursions: {}",
        out.stats.level0_sm_svds,
        out.stats.sm_svd_blocks,
        out.stats.sm_evd_blocks,
        out.stats.recursed_blocks
    );
    let t = gpu.timeline();
    println!(
        "simulated time: {:.3} ms over {} kernel launches (mean occupancy {:.4})",
        t.seconds * 1e3,
        t.launches,
        t.mean_occupancy()
    );
}

fn known_spectrum(r: usize) -> Vec<f64> {
    (1..=r).rev().map(|k| k as f64).collect()
}
