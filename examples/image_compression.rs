//! Low-rank image compression with batched tile SVDs — the motivating
//! workload from the paper's introduction ("SVD enables us to keep the
//! primary singular values of an image for retaining the image quality in
//! data compression and reconstruction").
//!
//! Run with: `cargo run --release --example image_compression`

use wcycle_svd::apps::{compress, synthetic_image};
use wcycle_svd::gpu::{Gpu, V100};

fn main() {
    let gpu = Gpu::new(V100);
    let img = synthetic_image(192, 256);
    println!(
        "image: {}x{} ({} floats)",
        img.rows(),
        img.cols(),
        img.len()
    );
    println!(
        "{:>6} {:>6} {:>16} {:>14} {:>12}",
        "tile", "rank", "rel. error", "storage", "sim time"
    );

    for &(tile, rank) in &[
        (32usize, 2usize),
        (32, 4),
        (32, 8),
        (64, 4),
        (64, 8),
        (64, 16),
    ] {
        gpu.reset_timeline();
        let c = compress(&gpu, &img, tile, rank).expect("compression failed");
        println!(
            "{tile:>6} {rank:>6} {:>16.4e} {:>13.1}% {:>9.3} ms",
            c.relative_error,
            c.storage_ratio * 100.0,
            gpu.elapsed_seconds() * 1e3
        );
    }

    // Sanity: full rank reconstructs exactly.
    let exact = compress(&gpu, &img, 32, 32).unwrap();
    assert!(exact.relative_error < 1e-9);
    println!(
        "\nfull-rank check: relative error {:.2e} (exact)",
        exact.relative_error
    );
}
