//! Inside the auto-tuning engine (§IV-D3): shows the candidate plan table
//! (Table II/III), the TLP objective per candidate, which plan the engine
//! selects for several workloads, and what the α-warp selectors choose.
//!
//! Run with: `cargo run --release --example autotune_report`

use wcycle_svd::batched::alpha::{generate_training_set, DecisionTree};
use wcycle_svd::batched::{
    ai_gram, ai_update, alpha_gcf, auto_tune, candidate_plans, tlp, V100_TLP_THRESHOLD,
};
use wcycle_svd::gpu::{Gpu, V100};

fn main() {
    // The paper's worked example: 100 matrices of 256x256 on a V100.
    let sizes = vec![(256usize, 256usize); 100];
    println!("candidate plans for m* = 256 (Table III), workload = 100 x 256^2:");
    println!(
        "{:>4} {:>6} {:>6} {:>5} {:>14} {:>8} {:>8}",
        "no.", "w", "delta", "T", "TLP (f1)", "AI1", "AI2"
    );
    for (k, plan) in candidate_plans(256).iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>6} {:>5} {:>14.0} {:>8.1} {:>8.1}",
            k + 1,
            plan.w,
            plan.delta,
            plan.threads,
            tlp(plan, &sizes),
            ai_gram(plan, V100.load_width),
            ai_update(plan, V100.load_width),
        );
    }
    let chosen = auto_tune(&sizes, V100_TLP_THRESHOLD);
    println!(
        "\nthreshold {} -> engine selects w={}, delta={}, T={} (the paper's 4th candidate)",
        V100_TLP_THRESHOLD, chosen.w, chosen.delta, chosen.threads
    );
    assert_eq!((chosen.w, chosen.delta), (16, 128));

    // Other workloads.
    for (label, sizes) in [
        (
            "1 x 512^2 (single large SVD)",
            vec![(512usize, 512usize); 1],
        ),
        ("500 x 64^2 (large batch of small)", vec![(64, 64); 500]),
        ("10 x 1536^2 (few huge)", vec![(1536, 1536); 10]),
    ] {
        let p = auto_tune(&sizes, V100_TLP_THRESHOLD);
        println!(
            "{label:<36} -> w={:<3} delta={:<5} T={}",
            p.w, p.delta, p.threads
        );
    }

    // α-warp selection: the GCF rule and the trained decision tree.
    println!("\nGCF α rule (threads per column pair):");
    for m_star in [8usize, 16, 32, 48, 64, 100] {
        println!(
            "  m* = {m_star:<4} -> {:>2} threads/pair",
            alpha_gcf(m_star)
        );
    }

    println!("\ntraining the decision tree on simulator-labelled batches...");
    let gpu = Gpu::new(V100);
    let set = generate_training_set(&gpu, 7);
    let tree = DecisionTree::train(&set, 4);
    println!(
        "trained on {} samples, {} decision nodes",
        set.len(),
        tree.node_count()
    );
    for (m_star, batch) in [(32usize, 1usize), (32, 200), (64, 10), (16, 500)] {
        let p = tree.predict_proba(m_star, batch);
        println!(
            "  (m*={m_star:<3} mu={batch:<4}) -> {:>2} threads/pair  probs[4,8,16,32] = {:?}",
            tree.predict(m_star, batch),
            p.map(|x| (x * 100.0).round() / 100.0)
        );
    }
}
