//! Separable CNN filter approximation (the paper's ref. \[3\] workload):
//! one batched W-cycle SVD over a whole filter bank, then rank-1/rank-2
//! splits that replace each k x k convolution with two k-tap passes.
//!
//! Run with: `cargo run --release --example separable_filters`

use wcycle_svd::apps::{separate_filter_bank, synthetic_filter_bank};
use wcycle_svd::gpu::{Gpu, V100};

fn main() {
    let gpu = Gpu::new(V100);
    let k = 11;
    let bank = synthetic_filter_bank(64, k, 7);
    println!("filter bank: {} filters of {k}x{k}", bank.len());

    for rank in [1usize, 2, 3] {
        gpu.reset_timeline();
        let seps = separate_filter_bank(&gpu, &bank, rank).expect("separation failed");
        let mean_energy: f64 =
            seps.iter().map(|s| s.energy_captured).sum::<f64>() / seps.len() as f64;
        let worst_energy = seps
            .iter()
            .map(|s| s.energy_captured)
            .fold(f64::INFINITY, f64::min);
        println!(
            "rank {rank}: mean energy {:.1}%  worst {:.1}%  MACs/pixel {:.0}% of dense  ({:.3} ms simulated)",
            mean_energy * 100.0,
            worst_energy * 100.0,
            seps[0].mac_ratio(k) * 100.0,
            gpu.elapsed_seconds() * 1e3,
        );
    }

    // Show one filter's reconstruction error at rank 2.
    let seps = separate_filter_bank(&gpu, &bank, 2).unwrap();
    let err = seps[5].reconstruct().sub(&bank[5]).fro_norm() / bank[5].fro_norm();
    println!("\nfilter #5 rank-2 relative error: {err:.3}");
}
