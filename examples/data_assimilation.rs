//! The paper's §V-F application: the analysis step of an ocean-model data
//! assimilation, one SVD per grid point with sizes varying across the mesh.
//!
//! Compares the W-cycle batched SVD against the MAGMA-like serial two-stage
//! SVD on a simulated AMD Vega20 (the Fig. 14(b) setup) and checks the two
//! engines produce the same analysis weights.
//!
//! Run with: `cargo run --release --example data_assimilation`

use wcycle_svd::apps::{analysis_step, AssimilationProblem, SvdEngine};
use wcycle_svd::gpu::{Gpu, VEGA20};

fn main() {
    // A reduced mesh: 48 grid points with local observation matrices
    // between 24x24 and 112x112 (the paper's mesh spans 50..1024).
    let problem = AssimilationProblem::generate(48, 24, 112, 2026);
    let sizes: Vec<usize> = problem.anomalies.iter().map(|a| a.rows()).collect();
    println!(
        "ocean grid: {} points, local problem sizes {}..{}",
        sizes.len(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    let gpu_m = Gpu::new(VEGA20);
    let magma = analysis_step(&gpu_m, &problem, SvdEngine::Magma).expect("magma path");
    println!(
        "MAGMA analysis:   {:>9.3} ms simulated",
        magma.svd_seconds * 1e3
    );

    let gpu_w = Gpu::new(VEGA20);
    let wcycle = analysis_step(&gpu_w, &problem, SvdEngine::WCycle).expect("wcycle path");
    println!(
        "W-cycle analysis: {:>9.3} ms simulated",
        wcycle.svd_seconds * 1e3
    );
    println!(
        "speedup: {:.2}x (paper reports 2.73~3.09x at full mesh scale)",
        magma.svd_seconds / wcycle.svd_seconds
    );

    // Cross-engine validation: identical analysis weights (up to the sign
    // ambiguity of singular vectors, so compare norms).
    let (wn, mn) = (wcycle.weight_norms(), magma.weight_norms());
    let worst = wn
        .iter()
        .zip(&mn)
        .map(|(a, b)| (a - b).abs() / (1.0 + b))
        .fold(0.0f64, f64::max);
    println!("max relative weight-norm disagreement: {worst:.2e}");
    assert!(worst < 1e-7, "engines disagree");

    // Show a few weights.
    for (k, w) in wcycle.weights.iter().take(3).enumerate() {
        println!(
            "grid point {k}: |w| = {:.4}, first entries {:?}",
            wn[k],
            &w[..3.min(w.len())]
        );
    }
}
