//! Integration tests for wsvd-analyze's ahead-of-time plan certification:
//!
//! * property: every plan the auto-tuner can select for a random size
//!   multiset holds a certificate, and the runtime consultation accepts it
//!   (zero false rejections over the reachable plan space);
//! * agreement: under `CertifyMode::Require`, runs are bit-identical with
//!   the sanitizer on and off, and a certified plan never trips the runtime
//!   sanitizer on the fig7/fig9 shapes;
//! * enforcement: an uncertified plan family is a hard error before any
//!   kernel launches.
//!
//! This file owns the process-global certification state: every test that
//! simulates work goes through [`require_certification`], so the global
//! `Require` mode never races a test expecting `Off`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use wcycle_svd::batched::autotune::{auto_tune_with_w_cap, V100_TLP_THRESHOLD};
use wcycle_svd::batched::models::TailorPlan;
use wcycle_svd::core::certify::{self, CertificateStore, CertifyMode};
use wcycle_svd::gpu::{Gpu, SanitizeMode, ALL_DEVICES, V100};
use wcycle_svd::jacobi::ordering::Ordering;
use wcycle_svd::linalg::generate::random_batch;
use wcycle_svd::{wcycle_svd, Tuning, WCycleConfig};
use wsvd_analyze::plan_space::{certify_all_devices, DEFAULT_MAX_BLOCKS};

fn store() -> &'static Arc<CertificateStore> {
    static STORE: OnceLock<Arc<CertificateStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Arc::new(certify_all_devices(DEFAULT_MAX_BLOCKS).expect("plan space certifies"))
    })
}

/// Installs the store and flips the process into `Require` mode (once).
fn require_certification() {
    static ARMED: OnceLock<()> = OnceLock::new();
    ARMED.get_or_init(|| {
        certify::install_store(store().clone());
        certify::set_mode(CertifyMode::Require);
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Zero false rejections: whatever multiset of sizes the workload
    /// throws at the tuner, under any threshold regime, the selected plan
    /// is certified on every device and the level check accepts it.
    #[test]
    fn every_autotuned_plan_is_certified(
        sizes in prop::collection::vec((1usize..=200, 1usize..=200), 1..8),
        threshold_sel in 0usize..3,
    ) {
        let threshold = [0.0, V100_TLP_THRESHOLD, f64::INFINITY][threshold_sel];
        let plan: TailorPlan = auto_tune_with_w_cap(&sizes, threshold, 48);
        for device in &ALL_DEVICES {
            let cert = store().lookup(device.name, plan.w, plan.threads);
            prop_assert!(
                cert.is_some(),
                "plan (w={}, T={}) uncertified on {}",
                plan.w, plan.threads, device.name
            );
            let checked = certify::check_level_with(
                store(), device, &plan, &sizes, Ordering::RoundRobin,
            );
            prop_assert!(
                checked.is_ok(),
                "false rejection on {}: {}",
                device.name,
                checked.unwrap_err()
            );
        }
    }
}

/// Certified runs agree with the sanitizer: on the fig7 and fig9 shapes,
/// simulated time and singular values are bit-identical with hazard
/// checking on and off, and the sanitizer stays clean — a certified plan
/// never trips a runtime check.
#[test]
fn certified_runs_agree_with_sanitizer() {
    require_certification();
    let shapes: &[(usize, usize, usize)] = &[
        // fig7 shapes (m, n, batch).
        (8, 32, 6),
        (32, 32, 6),
        (32, 8, 6),
        // fig9 squares.
        (64, 64, 3),
        (128, 128, 2),
    ];
    for &(m, n, batch) in shapes {
        let mats = random_batch(batch, m, n, (m * 1000 + n) as u64);
        let cfg = WCycleConfig::default();

        let plain = Gpu::new(V100);
        let a = wcycle_svd(&plain, &mats, &cfg).unwrap();

        let sanitized = Gpu::with_sanitize(V100, SanitizeMode::Full);
        let b = wcycle_svd(&sanitized, &mats, &cfg).unwrap();

        assert_eq!(
            plain.elapsed_seconds().to_bits(),
            sanitized.elapsed_seconds().to_bits(),
            "{m}x{n}: simulated time must be bit-identical"
        );
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.sigma.len(), rb.sigma.len());
            for (sa, sb) in ra.sigma.iter().zip(&rb.sigma) {
                assert_eq!(
                    sa.to_bits(),
                    sb.to_bits(),
                    "{m}x{n}: sigma must be bit-identical"
                );
            }
        }
        let rep = sanitized.sanitizer_report();
        assert!(
            rep.is_clean(),
            "{m}x{n}: certified plan tripped the sanitizer: {:?}",
            rep.violations
        );
    }
}

/// Enforcement: a plan family outside the certified space (64 threads per
/// block is in no tier) is a hard error before any kernel launches.
#[test]
fn uncertified_plan_is_a_hard_error_before_launch() {
    require_certification();
    let gpu = Gpu::new(V100);
    let mats = random_batch(2, 64, 64, 7);
    let cfg = WCycleConfig {
        tuning: Tuning::Fixed(TailorPlan::new(16, 32, 64)),
        ..WCycleConfig::default()
    };
    let err = wcycle_svd(&gpu, &mats, &cfg).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("uncertified plan") && msg.contains("not certified"),
        "expected a certification error, got: {msg}"
    );
    // Nothing launched: the error fired at plan-selection time.
    assert_eq!(
        gpu.elapsed_seconds(),
        0.0,
        "uncertified plan must be rejected before any launch"
    );
}

/// The default mode is `Off`: without opting in, nothing consults the
/// store. (This runs in other test binaries implicitly — every other
/// integration suite exercises the W-cycle with certification off — but
/// pin the default here too, before this binary arms `Require`.)
#[test]
fn certification_is_opt_in() {
    // No `require_certification()` here on purpose: only check the
    // documented default. The global may already be `Require` if another
    // test ran first, so only assert when this is the first.
    if certify::store().is_none() {
        assert_eq!(certify::mode(), CertifyMode::Off);
    }
}
