//! Cross-layer trace integration: a real W-cycle workload drives the
//! simulator with an enabled sink, and the exported timeline must be
//! (a) valid Chrome trace-event JSON with sane per-track timestamps,
//! (b) consistent with the `Profiler`'s per-kernel accounting, and
//! (c) byte-identical across repeated seeded runs (modulo the
//! process-cumulative `plan-cache` counter track, which must only warm up).

use std::collections::BTreeMap;

use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::generate::random_batch;
use wsvd_trace::{chrome_trace_json, ArgValue, Event, EventKind, TraceSink};

/// Mixed batch: three level-0 matrices plus one that descends the W-cycle,
/// so the trace exercises kernel spans, sweep instants and plan events.
fn traced_workload() -> (Gpu, TraceSink) {
    let sink = TraceSink::enabled();
    let gpu = Gpu::with_trace(V100, sink.clone());
    let mut mats = random_batch(3, 24, 24, 7);
    mats.extend(random_batch(1, 96, 96, 9));
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    (gpu, sink)
}

fn span_bounds(e: &Event) -> Option<(f64, f64)> {
    match e.kind {
        EventKind::Span { start, dur } => Some((start, start + dur)),
        _ => None,
    }
}

#[test]
fn chrome_export_reparses_with_serde_json() {
    let (_gpu, sink) = traced_workload();
    let json = chrome_trace_json(&sink.events(), &sink.processes());
    let v: serde_json::Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
    let evs = v
        .get("traceEvents")
        .and_then(|e| e.as_seq())
        .expect("traceEvents array");
    assert!(
        evs.len() > 20,
        "expected a non-trivial trace, got {} events",
        evs.len()
    );
    for e in evs {
        let ph = e
            .get("ph")
            .and_then(|p| p.as_str())
            .expect("every event has ph");
        assert!(matches!(ph, "X" | "i" | "C" | "M"), "unexpected phase {ph}");
        assert!(e.get("name").and_then(|n| n.as_str()).is_some());
        if ph != "M" {
            let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts present");
            assert!(ts.is_finite() && ts >= 0.0, "ts {ts} out of range");
        }
        if ph == "X" {
            let dur = e.get("dur").and_then(|d| d.as_f64()).expect("dur present");
            assert!(dur.is_finite() && dur >= 0.0, "dur {dur} out of range");
        }
    }
}

#[test]
fn span_timestamps_are_monotone_per_track() {
    let (_gpu, sink) = traced_workload();
    let events = sink.events();
    let mut lanes: BTreeMap<(u32, &str), Vec<(f64, f64)>> = BTreeMap::new();
    for e in &events {
        if let Some(b) = span_bounds(e) {
            lanes.entry((e.pid, e.track.as_str())).or_default().push(b);
        }
    }
    assert!(lanes.keys().any(|(_, t)| *t == "kernels"));
    for ((pid, track), spans) in lanes {
        if track == "wcycle" {
            // Recursion spans nest (the W shape): any two either disjoint
            // or one inside the other, never partially overlapping.
            for (i, &(s1, e1)) in spans.iter().enumerate() {
                for &(s2, e2) in &spans[i + 1..] {
                    let disjoint = e1 <= s2 || e2 <= s1;
                    let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                    assert!(
                        disjoint || nested,
                        "wcycle spans partially overlap: [{s1}, {e1}] vs [{s2}, {e2}]"
                    );
                }
            }
        } else {
            // Launch-ordered lanes never run backwards or overlap.
            for w in spans.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-15,
                    "track {track} (pid {pid}) overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn trace_kernel_totals_match_profiler() {
    let (gpu, sink) = traced_workload();
    // Per-launch kernel spans cover the kernel body; the launch-overhead
    // arg completes the Profiler's kernel+overhead accounting.
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut launches: BTreeMap<String, u64> = BTreeMap::new();
    for e in sink.events().iter().filter(|e| e.track == "kernels") {
        if let EventKind::Span { dur, .. } = e.kind {
            let overhead = e
                .args
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"launch_overhead_s", ArgValue::F64(x)) => Some(*x),
                    _ => None,
                })
                .expect("kernel spans carry launch_overhead_s");
            *totals.entry(e.name.clone()).or_insert(0.0) += dur + overhead;
            *launches.entry(e.name.clone()).or_insert(0) += 1;
        }
    }
    let profile = gpu.profile();
    let mut labels = 0usize;
    for (label, k) in profile.iter() {
        let t = totals.get(label).copied().unwrap_or(0.0);
        assert!(
            (t - k.seconds).abs() <= 1e-12 * k.seconds.max(1e-30),
            "label {label}: trace total {t} vs profiler {}",
            k.seconds
        );
        assert_eq!(
            launches.get(label).copied().unwrap_or(0),
            k.launches,
            "label {label}"
        );
        labels += 1;
    }
    assert!(labels >= 3, "expected several kernel labels, got {labels}");
    assert_eq!(
        totals.len(),
        labels,
        "trace saw labels the profiler did not"
    );
}

#[test]
fn repeated_seeded_runs_export_identical_traces() {
    // The `plan-cache` counter track carries the *process-cumulative*
    // hit/miss counts of the global autotune plan cache, so it is the one
    // track that legitimately differs between a cold first run and a warm
    // second run. Everything else must be byte-identical. (The wsvd-metrics
    // registry fixes this for metrics consumers: it records hit/miss as
    // per-call increments, so `Snapshot::since` yields exact per-run deltas
    // — see `metrics_integration::plan_cache_counters_are_per_run_deltas`.)
    let run = || {
        let (_gpu, sink) = traced_workload();
        let (events, processes) = (sink.events(), sink.processes());
        let (cache, rest): (Vec<Event>, Vec<Event>) =
            events.into_iter().partition(|e| e.track == "plan-cache");
        (chrome_trace_json(&rest, &processes), cache)
    };
    let (json1, cache1) = run();
    let (json2, cache2) = run();
    assert_eq!(json1, json2, "seeded traces must be byte-identical");
    // The cache track itself must show the second run warmer, not colder:
    // same sample count, no new misses, strictly more hits.
    let last = |events: &[Event], name: &str| -> f64 {
        events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Counter { value, .. } if e.name == name => Some(value),
                _ => None,
            })
            .expect("plan-cache samples present")
    };
    assert_eq!(cache1.len(), cache2.len());
    assert_eq!(
        last(&cache1, "misses"),
        last(&cache2, "misses"),
        "a repeated workload must not re-tune"
    );
    assert!(
        last(&cache2, "hits") > last(&cache1, "hits"),
        "the second run must hit the warm plan cache"
    );
}
