//! End-to-end tests of the `wsvd-sanitizer`: planted bugs of every hazard
//! class must be detected and surfaced through the trace sink, while the
//! real W-cycle workload under full checking must come out clean with
//! bit-identical numerics and simulated timing.

use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, HazardKind, KernelConfig, SanitizeMode, V100};
use wsvd_jacobi::verify::{verify_schedule, Coverage, ScheduleViolation};
use wsvd_jacobi::Ordering;
use wsvd_linalg::generate::random_batch;

fn sanitized_gpu() -> Gpu {
    Gpu::with_sanitize(V100, SanitizeMode::Full)
}

#[test]
fn planted_write_write_race_is_reported() {
    let gpu = sanitized_gpu();
    let kc = KernelConfig::new(1, 32, 1024, "ww_race");
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(8)?;
        ctx.smem_write(0, &buf, 0, 8);
        ctx.smem_write(1, &buf, 0, 8); // same range, no barrier between
        ctx.sync_threads();
        Ok(())
    })
    .unwrap();
    let report = gpu.sanitizer_report();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.kind, HazardKind::WriteWrite);
    assert_eq!(v.kernel, "ww_race");
    assert_eq!(v.block, 0);
}

#[test]
fn missing_barrier_read_write_race_is_reported() {
    let gpu = sanitized_gpu();
    let kc = KernelConfig::new(1, 32, 1024, "rw_race");
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(32)?;
        ctx.smem_write(0, &buf, 0, 16);
        ctx.smem_read(1, &buf, 8, 4); // reads the half-written range
        ctx.sync_threads();
        Ok(())
    })
    .unwrap();
    let report = gpu.sanitizer_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == HazardKind::ReadWrite),
        "{:?}",
        report.violations
    );
    // The same kernel with the barrier in place is clean.
    let gpu = sanitized_gpu();
    let kc = KernelConfig::new(1, 32, 1024, "rw_fenced");
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(32)?;
        ctx.smem_write(0, &buf, 0, 16);
        ctx.sync_threads();
        ctx.smem_read(1, &buf, 8, 4);
        Ok(())
    })
    .unwrap();
    assert!(gpu.sanitizer_report().is_clean());
}

#[test]
fn barrier_divergence_is_reported() {
    let gpu = sanitized_gpu();
    let kc = KernelConfig::new(1, 32, 0, "divergent");
    gpu.launch_collect(kc, |_b, ctx| {
        ctx.lane_sync(0);
        ctx.lane_sync(0);
        ctx.lane_sync(1); // lane 1 arrives once, lane 0 twice
        Ok(())
    })
    .unwrap();
    let report = gpu.sanitizer_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == HazardKind::BarrierDivergence),
        "{:?}",
        report.violations
    );
}

#[test]
fn leaked_smem_buffer_is_reported() {
    let gpu = sanitized_gpu();
    let kc = KernelConfig::new(1, 32, 1024, "leaky");
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(64)?;
        ctx.smem_write(0, &buf, 0, 64);
        ctx.sync_threads();
        std::mem::forget(buf); // never returned to the arena
        Ok(())
    })
    .unwrap();
    let report = gpu.sanitizer_report();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == HazardKind::SmemLeak),
        "{:?}",
        report.violations
    );
}

#[test]
fn violations_surface_on_the_trace_sanitizer_track() {
    let sink = wsvd_trace::TraceSink::enabled();
    let gpu = Gpu::with_trace(V100, sink.clone());
    // Opt this single launch in regardless of the GPU-wide/global mode.
    let mut kc = KernelConfig::new(1, 32, 1024, "traced_race");
    kc.sanitize = Some(SanitizeMode::Full);
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(8)?;
        ctx.smem_write(0, &buf, 0, 8);
        ctx.smem_write(1, &buf, 0, 8);
        ctx.sync_threads();
        Ok(())
    })
    .unwrap();
    let events = sink.events();
    let on_track: Vec<_> = events.iter().filter(|e| e.track == "sanitizer").collect();
    assert!(
        on_track.iter().any(|e| e.name == "write-write race"),
        "violation instants missing: {:?}",
        on_track.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
    );
    assert!(
        on_track.iter().any(|e| e.name == "launch-checked"),
        "per-launch summary missing"
    );
}

#[test]
fn overlapping_pivot_schedule_fails_the_static_checker() {
    // Pairs (0,1) and (1,2) share column 1 within one step.
    let bad = vec![vec![(0, 1), (1, 2)], vec![(0, 2)]];
    match verify_schedule(&bad, 3, Coverage::ExactlyOnce) {
        Err(ScheduleViolation::Conflict { index: 1, .. }) => {}
        other => panic!("expected a conflict on column 1, got {other:?}"),
    }
    // Every shipped ordering passes at every size the W-cycle uses.
    for n in 2..=32 {
        for o in Ordering::ALL {
            wsvd_jacobi::verify_ordering(o, n).unwrap_or_else(|e| panic!("{o:?} n={n}: {e}"));
        }
    }
}

#[test]
fn static_level_verification_runs_under_sanitize_and_passes() {
    use wsvd_batched::models::TailorPlan;
    let plan = TailorPlan::new(24, 64, 256);
    let check = wsvd_core::verify_level(
        &[(100, 100), (96, 96)],
        &plan,
        Ordering::RoundRobin,
        48 * 1024,
    )
    .unwrap();
    assert!(!check.proofs.is_empty());
    assert!(check.requirements.iter().all(|r| r.fits(48 * 1024)));
}

#[test]
fn sanitized_wcycle_fig7_small_is_clean_and_bit_identical() {
    let mats: Vec<_> = [(8usize, 32usize), (32, 16), (96, 96)]
        .iter()
        .flat_map(|&(m, n)| random_batch(2, m, n, (m * 10 + n) as u64))
        .collect();
    let cfg = WCycleConfig::default();

    let plain_gpu = Gpu::new(V100);
    let plain = wcycle_svd(&plain_gpu, &mats, &cfg).unwrap();
    let plain_t = plain_gpu.elapsed_seconds();

    let san_gpu = sanitized_gpu();
    let sanitized = wcycle_svd(&san_gpu, &mats, &cfg).unwrap();
    let san_t = san_gpu.elapsed_seconds();

    let report = san_gpu.sanitizer_report();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.stats.blocks_checked > 0);
    assert!(report.stats.epochs > 0);

    // Zero-cost contract: checking must not perturb the simulated clock...
    assert_eq!(plain_t, san_t, "sanitizer changed simulated time");
    // ...or any numerical output.
    for (p, s) in plain.results.iter().zip(&sanitized.results) {
        assert_eq!(p.sigma, s.sigma);
        assert_eq!(p.sweeps, s.sweeps);
    }
}

#[test]
fn kernel_config_opt_in_works_without_global_mode() {
    // A plain GPU, one launch opted in via KernelConfig: only that launch
    // is checked.
    let gpu = Gpu::new(V100);
    let mut kc = KernelConfig::new(1, 32, 1024, "opted_in");
    kc.sanitize = Some(SanitizeMode::Full);
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(8)?;
        ctx.smem_write(0, &buf, 0, 8);
        ctx.smem_write(1, &buf, 0, 8);
        ctx.sync_threads();
        Ok(())
    })
    .unwrap();
    assert_eq!(gpu.sanitizer_report().violations.len(), 1);

    let kc = KernelConfig::new(1, 32, 1024, "not_opted_in");
    gpu.launch_collect(kc, |_b, ctx| {
        let buf = ctx.smem().alloc(8)?;
        ctx.smem_write(0, &buf, 0, 8);
        ctx.smem_write(1, &buf, 0, 8);
        Ok(())
    })
    .unwrap();
    assert_eq!(
        gpu.sanitizer_report().violations.len(),
        1,
        "unchecked launch must not add reports"
    );
}
