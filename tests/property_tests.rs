//! Property-based tests (proptest) on the core invariants:
//! * any real matrix has a valid W-cycle SVD (orthogonal factors, sorted
//!   non-negative values, reconstruction);
//! * the spectrum matches the independent two-stage oracle;
//! * plane rotations preserve norms; orderings are valid schedules;
//!   the SM-footprint predicates match kernel behaviour.

use proptest::prelude::*;

use wcycle_svd::gpu::{Gpu, KernelConfig, V100};
use wcycle_svd::jacobi::ordering::{odd_even, ring, round_robin};
use wcycle_svd::jacobi::{evd_fits_in_sm, svd_fits_in_sm, MemSpace, OneSidedConfig};
use wcycle_svd::linalg::givens::{one_sided_rotation, rotate_columns, rotated_norms};
use wcycle_svd::linalg::verify::orthonormality_error;
use wcycle_svd::linalg::{singular_values, Matrix};
use wcycle_svd::{wcycle_svd, WCycleConfig};

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
        .prop_map(|(m, n, seed)| wcycle_svd::linalg::generate::random_uniform(m, n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn wcycle_svd_is_always_valid(a in arb_matrix(48)) {
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        let r = &out.results[0];
        // Sorted, non-negative.
        prop_assert!(r.sigma.iter().all(|&s| s >= 0.0));
        prop_assert!(r.sigma.windows(2).all(|w| w[0] >= w[1]));
        // Orthogonal factors.
        prop_assert!(orthonormality_error(&r.u) < 1e-8);
        prop_assert!(orthonormality_error(r.v.as_ref().unwrap()) < 1e-8);
        // Spectrum matches the independent oracle.
        let want = singular_values(&a).unwrap();
        for (g, w) in r.sigma.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-7 * (1.0 + w), "{} vs {}", g, w);
        }
    }

    #[test]
    fn frobenius_norm_is_preserved_by_svd(a in arb_matrix(40)) {
        // ||A||_F^2 = sum sigma_i^2 — a global invariant of the rotations.
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        let sum_sq: f64 = out.results[0].sigma.iter().map(|s| s * s).sum();
        let fro2 = a.fro_norm().powi(2);
        prop_assert!((sum_sq - fro2).abs() < 1e-9 * (1.0 + fro2));
    }

    #[test]
    fn rotation_orthogonalizes_and_preserves_energy(
        x in prop::collection::vec(-100.0f64..100.0, 2..40),
        y_seed in any::<u64>(),
    ) {
        let y: Vec<f64> = {
            let m = wcycle_svd::linalg::generate::random_uniform(x.len(), 1, y_seed);
            m.col(0).to_vec()
        };
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(p, q)| p * q).sum::<f64>();
        let (aii, aij, ajj) = (dot(&x, &x), dot(&x, &y), dot(&y, &y));
        let rot = one_sided_rotation(aii, aij, ajj);
        let (mut x2, mut y2) = (x.clone(), y.clone());
        rotate_columns(rot, &mut x2, &mut y2);
        let scale = (aii + ajj).max(1.0);
        // Orthogonality achieved.
        prop_assert!(dot(&x2, &y2).abs() < 1e-10 * scale);
        // Energy preserved.
        prop_assert!((dot(&x2, &x2) + dot(&y2, &y2) - (aii + ajj)).abs() < 1e-9 * scale);
        // Eq.-(6) cached norms agree with recomputation.
        let (pii, pjj) = rotated_norms(rot, aii, aij, ajj);
        prop_assert!((pii - dot(&x2, &x2)).abs() < 1e-9 * scale);
        prop_assert!((pjj - dot(&y2, &y2)).abs() < 1e-9 * scale);
    }

    #[test]
    fn round_robin_is_a_perfect_schedule(n in 2usize..60) {
        let s = round_robin(n);
        let mut seen = std::collections::HashSet::new();
        for step in &s {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in step {
                prop_assert!(i < j && j < n);
                prop_assert!(seen.insert((i, j)), "pair repeated");
                prop_assert!(used.insert(i) && used.insert(j), "index reused in step");
            }
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn ring_is_a_perfect_schedule(n in 2usize..40) {
        let s = ring(n);
        let mut seen = std::collections::HashSet::new();
        for step in &s {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in step {
                prop_assert!(seen.insert((i, j)));
                prop_assert!(used.insert(i) && used.insert(j));
            }
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn odd_even_steps_are_disjoint(n in 2usize..40) {
        for step in odd_even(n) {
            let mut used = std::collections::HashSet::new();
            for (i, j) in step {
                prop_assert!(used.insert(i) && used.insert(j));
            }
        }
    }

    #[test]
    fn fits_predicate_never_lies(m in 1usize..200, n in 1usize..80) {
        // Whenever the predicate says the SVD fits, the kernel must run
        // without a shared-memory overflow.
        let smem = V100.smem_per_block_bytes;
        prop_assume!(svd_fits_in_sm(m, n, smem));
        let a = wcycle_svd::linalg::generate::random_uniform(m, n, (m * 331 + n) as u64);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 128, smem, "prop-fits");
        let cfg = OneSidedConfig { max_sweeps: 1, ..Default::default() };
        let result = gpu.launch_collect(kc, |_, ctx| {
            wcycle_svd::jacobi::svd_in_block(&a, &cfg, ctx, MemSpace::Shared)
        });
        prop_assert!(result.is_ok(), "kernel overflowed though predicate said fit");
    }

    #[test]
    fn evd_fits_predicate_never_lies(s in 1usize..64) {
        let smem = V100.smem_per_block_bytes;
        prop_assume!(evd_fits_in_sm(s, smem));
        let b = wcycle_svd::linalg::generate::random_symmetric(s, s as u64);
        let gpu = Gpu::new(V100);
        let kc = KernelConfig::new(1, 256, smem, "prop-evd-fits");
        let result = gpu.launch_collect(kc, |_, ctx| {
            wcycle_svd::jacobi::evd_in_block(&b, &wcycle_svd::jacobi::EvdConfig::default(), ctx)
        });
        prop_assert!(result.is_ok());
    }

    #[test]
    fn tailor_assignment_covers_rows_exactly(
        rows in prop::collection::vec(1usize..300, 1..10),
        delta in 1usize..128,
    ) {
        let blocks = wcycle_svd::batched::tailor_assignment(&rows, delta);
        let mut covered: Vec<Vec<bool>> = rows.iter().map(|&m| vec![false; m]).collect();
        for block in &blocks {
            for seg in block {
                for row in covered[seg.gemm]
                    .iter_mut()
                    .skip(seg.row_start)
                    .take(seg.rows)
                {
                    prop_assert!(!*row, "row covered twice");
                    *row = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|c| c.iter().all(|&x| x)), "rows uncovered");
    }
}
