//! Cross-engine validation: every solver in the workspace (W-cycle, the
//! block-Jacobi baselines, cuSOLVER-like, MAGMA-like) must agree with the
//! two-stage reference oracle on the same batch.

use wcycle_svd::baselines::{
    batched_dp_direct, batched_dp_gram, cusolver_batched_svd, magma_batched_svd,
};
use wcycle_svd::gpu::{Gpu, V100};
use wcycle_svd::linalg::generate::random_batch;
use wcycle_svd::linalg::singular_values;
use wcycle_svd::{wcycle_svd, WCycleConfig};

fn assert_close(got: &[f64], want: &[f64], tol: f64, engine: &str) {
    assert_eq!(got.len(), want.len(), "{engine}: wrong count");
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() < tol * (1.0 + w),
            "{engine}: sigma[{k}] {g} vs {w}"
        );
    }
}

#[test]
fn all_engines_agree_on_one_batch() {
    let gpu = Gpu::new(V100);
    let mats = random_batch(3, 56, 56, 2024);
    let refs: Vec<Vec<f64>> = mats.iter().map(|a| singular_values(a).unwrap()).collect();

    let wc = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    for (r, want) in wc.results.iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "wcycle");
    }
    for (r, want) in batched_dp_direct(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "dp_direct");
    }
    for (r, want) in batched_dp_gram(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "dp_gram");
    }
    for (r, want) in cusolver_batched_svd(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "cusolver");
    }
    for (r, want) in magma_batched_svd(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-10, "magma");
    }
}

#[test]
fn simulated_time_ordering_is_paper_consistent() {
    // The headline of the whole evaluation, in one assertion: for a batch of
    // mid-sized matrices, W-cycle < MAGMA < cuSOLVER-serial in simulated time.
    let mats = random_batch(8, 72, 72, 777);
    let time = |f: &dyn Fn(&Gpu)| {
        let gpu = Gpu::new(V100);
        f(&gpu);
        gpu.elapsed_seconds()
    };
    let wc = time(&|g| {
        wcycle_svd(g, &mats, &WCycleConfig::default()).unwrap();
    });
    let mg = time(&|g| {
        magma_batched_svd(g, &mats).unwrap();
    });
    let cu = time(&|g| {
        cusolver_batched_svd(g, &mats).unwrap();
    });
    assert!(wc < mg, "W-cycle ({wc}) must beat MAGMA ({mg})");
    assert!(
        mg < cu,
        "MAGMA ({mg}) must beat the serial cuSOLVER loop ({cu})"
    );
}

#[test]
fn engines_handle_rectangular_batches() {
    let gpu = Gpu::new(V100);
    let mats = vec![
        wcycle_svd::linalg::generate::random_uniform(60, 20, 1),
        wcycle_svd::linalg::generate::random_uniform(20, 60, 2),
    ];
    let refs: Vec<Vec<f64>> = mats.iter().map(|a| singular_values(a).unwrap()).collect();
    let wc = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    for (r, want) in wc.results.iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "wcycle-rect");
    }
    for (r, want) in batched_dp_gram(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-8, "dp_gram-rect");
    }
    for (r, want) in magma_batched_svd(&gpu, &mats).unwrap().iter().zip(&refs) {
        assert_close(&r.sigma, want, 1e-10, "magma-rect");
    }
}
