//! Cross-crate integration tests: the W-cycle SVD against the independent
//! two-stage reference oracle, across sizes, shapes, devices and configs.

use wcycle_svd::gpu::{Gpu, ALL_DEVICES, V100};
use wcycle_svd::linalg::generate::{
    mixed_size_batch, random_batch, random_uniform, with_condition_number, with_spectrum,
};
use wcycle_svd::linalg::verify::orthonormality_error;
use wcycle_svd::linalg::{matmul, singular_values, Matrix};
use wcycle_svd::{wcycle_svd, AlphaSelect, Tuning, WCycleConfig, WSvd};

fn assert_valid_svd(a: &Matrix, r: &WSvd, tol: f64) {
    let want = singular_values(a).expect("reference SVD");
    assert_eq!(r.sigma.len(), want.len());
    for (k, (g, w)) in r.sigma.iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() < tol * (1.0 + w),
            "sigma[{k}] = {g}, reference {w}"
        );
    }
    assert!(orthonormality_error(&r.u) < 1e-8);
    if let Some(v) = &r.v {
        assert!(orthonormality_error(v) < 1e-8);
        let rank = r.sigma.len();
        let mut us = r.u.clone();
        for j in 0..rank {
            let s = r.sigma[j];
            for x in us.col_mut(j) {
                *x *= s;
            }
        }
        let vthin = Matrix::from_fn(a.cols(), rank, |i, j| v[(i, j)]);
        let rec = matmul(&us, &vthin.transpose());
        let denom = a.fro_norm().max(1e-300);
        assert!(
            rec.sub(a).fro_norm() / denom < 1e-8,
            "reconstruction failed"
        );
    }
}

#[test]
fn sizes_across_the_level0_boundary() {
    // Sweep sizes that straddle every SM-fit boundary.
    let gpu = Gpu::new(V100);
    for n in [2usize, 3, 5, 8, 17, 31, 32, 33, 48, 55, 64, 100] {
        let a = random_uniform(n, n, n as u64);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        assert_valid_svd(&a, &out.results[0], 1e-8);
    }
}

#[test]
fn extreme_aspect_ratios() {
    let gpu = Gpu::new(V100);
    for (m, n) in [
        (200usize, 3usize),
        (3, 200),
        (150, 40),
        (40, 150),
        (1, 17),
        (17, 1),
    ] {
        let a = random_uniform(m, n, (m * 1000 + n) as u64);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        assert_valid_svd(&a, &out.results[0], 1e-8);
    }
}

#[test]
fn large_mixed_batch_matches_reference() {
    let gpu = Gpu::new(V100);
    let mats = mixed_size_batch(&[(16, 16), (70, 70), (30, 90), (120, 40)], 12, 99);
    let out = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    for (a, r) in mats.iter().zip(&out.results) {
        assert_valid_svd(a, r, 1e-8);
    }
}

#[test]
fn ill_conditioned_inputs() {
    let gpu = Gpu::new(V100);
    for cond in [1e3, 1e8, 1e12] {
        let a = with_condition_number(80, 80, cond, 7);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
        let r = &out.results[0];
        // Large singular values to high relative accuracy.
        let want = singular_values(&a).unwrap();
        for (g, w) in r.sigma.iter().zip(&want).take(40) {
            assert!((g - w).abs() / w < 1e-8, "{g} vs {w} at cond {cond}");
        }
    }
}

#[test]
fn every_device_produces_identical_numerics() {
    // The device changes the cost model, never the arithmetic.
    let mats = random_batch(3, 60, 60, 5);
    let mut spectra: Vec<Vec<f64>> = Vec::new();
    for device in ALL_DEVICES {
        let gpu = Gpu::new(device);
        let out = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        spectra.push(out.results[0].sigma.clone());
        assert!(
            gpu.elapsed_seconds() > 0.0,
            "{}: no time recorded",
            device.name
        );
    }
    for s in &spectra[1..] {
        for (a, b) in s.iter().zip(&spectra[0]) {
            // Vega20's 64 KiB LDS changes the level classification, which
            // changes rotation order — values agree to working accuracy.
            assert!((a - b).abs() < 1e-9 * (1.0 + b), "{a} vs {b}");
        }
    }
}

#[test]
fn config_matrix_all_converge() {
    let a = random_uniform(90, 90, 13);
    let configs = vec![
        WCycleConfig::default(),
        WCycleConfig {
            tailor_gemm: false,
            ..Default::default()
        },
        WCycleConfig {
            cache_norms: false,
            ..Default::default()
        },
        WCycleConfig {
            want_v: false,
            ..Default::default()
        },
        WCycleConfig {
            alpha: AlphaSelect::Fixed(4),
            ..Default::default()
        },
        WCycleConfig {
            alpha: AlphaSelect::Fixed(32),
            ..Default::default()
        },
        WCycleConfig {
            tuning: Tuning::Widths(vec![8]),
            ..Default::default()
        },
        WCycleConfig {
            tuning: Tuning::Widths(vec![45, 16]),
            ..Default::default()
        },
        WCycleConfig {
            ordering: wcycle_svd::jacobi::Ordering::OddEven,
            ..Default::default()
        },
    ];
    let want = singular_values(&a).unwrap();
    for (k, cfg) in configs.iter().enumerate() {
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, std::slice::from_ref(&a), cfg).unwrap();
        for (g, w) in out.results[0].sigma.iter().zip(&want) {
            assert!((g - w).abs() < 1e-7 * (1.0 + w), "config {k}: {g} vs {w}");
        }
    }
}

#[test]
fn spectrum_with_clusters_and_zeros() {
    // Clustered and repeated singular values are the classic Jacobi stress.
    let gpu = Gpu::new(V100);
    let mut sigma = vec![5.0; 20];
    sigma.extend(vec![5.0 - 1e-9; 10]);
    sigma.extend(vec![1e-3; 20]);
    sigma.extend(vec![0.0; 14]);
    let a = with_spectrum(80, 64, &sigma, 21);
    let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
    let got = &out.results[0].sigma;
    for (g, w) in got.iter().zip(&sigma) {
        assert!((g - w).abs() < 1e-8, "{g} vs {w}");
    }
}

#[test]
fn empty_batch_and_tiny_matrices() {
    let gpu = Gpu::new(V100);
    let out = wcycle_svd(&gpu, &[], &WCycleConfig::default()).unwrap();
    assert!(out.results.is_empty());

    let a = Matrix::from_rows(1, 1, &[-2.5]);
    let out = wcycle_svd(&gpu, std::slice::from_ref(&a), &WCycleConfig::default()).unwrap();
    assert!((out.results[0].sigma[0] - 2.5).abs() < 1e-15);
}

#[test]
fn deterministic_across_runs() {
    let mats = random_batch(4, 72, 72, 31);
    let run = || {
        let gpu = Gpu::new(V100);
        let out = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        (
            out.results
                .iter()
                .map(|r| r.sigma.clone())
                .collect::<Vec<_>>(),
            gpu.elapsed_seconds(),
        )
    };
    let (s1, t1) = run();
    let (s2, t2) = run();
    assert_eq!(s1, s2, "numerics must be bit-identical");
    assert_eq!(t1, t2, "simulated time must be deterministic");
}
