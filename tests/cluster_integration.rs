//! Integration tests of the elastic cluster executor (work stealing, fault
//! injection, checkpoint/resume) driven through the public facade:
//!
//! * a killed-then-resumed analysis is **bit-identical** to the same killed
//!   run left uninterrupted — weights, per-rank simulated clocks and
//!   recovery counters — across three different kill times;
//! * the serialized checkpoint of a partially converged W-cycle sweep
//!   (per-level off-diagonal trackers included) survives a JSON round trip
//!   losslessly (proptest over the full `RunCheckpoint` shape);
//! * a rank killed *between* collectives is still detected — at the next
//!   chunk-pull boundary — and its work requeued with identical numerics
//!   (the PR 6 failover only noticed deaths at barriers).

use proptest::prelude::*;

use wcycle_svd::apps::assimilation::{
    analysis_resume_elastic_with, analysis_step_elastic_with, AssimilationProblem, SvdEngine,
};
use wcycle_svd::core::{
    ChunkPayload, ChunkRecord, ChunkState, CounterState, RankQueueState, RunCheckpoint,
    SweepRecord, CHECKPOINT_VERSION,
};
use wcycle_svd::gpu::cluster::{ElasticConfig, FaultPlan};
use wcycle_svd::gpu::{GpuCluster, VEGA20};
use wcycle_svd::WCycleConfig;

const SEED: u64 = 33;
const RANKS: usize = 3;

fn problem() -> AssimilationProblem {
    AssimilationProblem::generate(10, 12, 32, SEED)
}

fn run(
    p: &AssimilationProblem,
    ecfg: &ElasticConfig,
) -> (
    wcycle_svd::apps::ElasticAnalysis,
    Vec<f64>, // per-rank clocks
    f64,      // cluster makespan
) {
    let cluster = GpuCluster::new(VEGA20, RANKS);
    let out = analysis_step_elastic_with(
        &cluster,
        p,
        SvdEngine::WCycle,
        &WCycleConfig::default(),
        ecfg,
        SEED,
    )
    .unwrap();
    (out, cluster.rank_seconds(), cluster.elapsed_seconds())
}

#[test]
fn resume_is_bit_identical_to_straight_through_across_three_kill_points() {
    let p = problem();
    // Horizon from a clean run; kills land at 20/45/70% of it.
    let (_, _, horizon) = run(&p, &ElasticConfig::default());
    let mut requeues_seen = 0;
    for (i, frac) in [0.2, 0.45, 0.7].into_iter().enumerate() {
        let faults = FaultPlan::none().kill(1, frac * horizon);
        let straight = run(
            &p,
            &ElasticConfig {
                faults: faults.clone(),
                checkpoint_after: None,
            },
        );
        requeues_seen += straight.0.counters.requeued_chunks;
        let interrupted = run(
            &p,
            &ElasticConfig {
                faults: faults.clone(),
                checkpoint_after: Some(2 + i),
            },
        );
        let frozen = interrupted.0.checkpoint.expect("checkpoint requested");
        // The W-cycle's partially converged sweep state rides along.
        assert!(
            frozen
                .completed
                .iter()
                .all(|r| !r.payload.convergence.is_empty()),
            "every completed chunk must carry its sweep trajectory"
        );
        let thawed = RunCheckpoint::from_json(&frozen.to_json()).unwrap();
        let cluster = GpuCluster::new(VEGA20, RANKS);
        let resumed = analysis_resume_elastic_with(
            &cluster,
            &p,
            SvdEngine::WCycle,
            &WCycleConfig::default(),
            &ElasticConfig {
                faults,
                checkpoint_after: None,
            },
            thawed,
        )
        .unwrap();
        assert_eq!(
            straight.0.result.weights, resumed.result.weights,
            "kill point {i}: weights must replay bit-identically"
        );
        for (rank, (a, b)) in straight.1.iter().zip(cluster.rank_seconds()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kill point {i}: rank {rank} clock must replay exactly ({a} vs {b})"
            );
        }
        assert_eq!(
            straight.2.to_bits(),
            cluster.elapsed_seconds().to_bits(),
            "kill point {i}: makespan must replay exactly"
        );
        assert_eq!(
            straight.0.counters, resumed.counters,
            "kill point {i}: recovery counters must replay exactly"
        );
    }
    assert!(
        requeues_seen > 0,
        "at least one kill point must actually interrupt queued work"
    );
}

#[test]
fn kill_between_collectives_is_recovered_with_identical_numerics() {
    let p = problem();
    let clean = run(&p, &ElasticConfig::default());
    // The kill fires long before the run's only collective (the final
    // gather): detection must happen at a chunk-pull boundary.
    let sink = wsvd_health::HealthSink::enabled();
    sink.set_context("cluster-integration", SEED);
    let mut cluster = GpuCluster::new(VEGA20, RANKS);
    cluster.set_health(sink.clone());
    let killed = analysis_step_elastic_with(
        &cluster,
        &p,
        SvdEngine::WCycle,
        &WCycleConfig::default(),
        &ElasticConfig {
            faults: FaultPlan::none().kill(0, 1e-9),
            checkpoint_after: None,
        },
        SEED,
    )
    .unwrap();
    assert_eq!(
        clean.0.result.weights, killed.result.weights,
        "requeued work must reproduce the clean weights bit-identically"
    );
    assert!(killed.counters.requeued_chunks > 0);
    assert_eq!(killed.counters.killed_ranks, 1);
    let incidents = sink.incidents();
    assert_eq!(incidents.len(), 1, "{incidents:?}");
    assert_eq!(incidents[0].kind, "shard-dead");
    assert!(
        incidents[0].recovered,
        "survivors absorbed the shard, so the incident must be marked recovered"
    );
}

fn arb_sweeps() -> impl Strategy<Value = Vec<SweepRecord>> {
    prop::collection::vec(
        (0u64..6, 1u64..40, 0.0f64..10.0, 0u64..512).prop_map(
            |(level, sweep, off_norm, active)| SweepRecord {
                level,
                sweep,
                off_norm,
                active,
            },
        ),
        1..8,
    )
}

fn arb_chunk() -> impl Strategy<Value = ChunkState> {
    (
        (0usize..64, prop::collection::vec(0usize..1024, 0..6)),
        (0usize..6, 0usize..16, 0usize..4),
    )
        .prop_map(|((id, indices), (class, home_rank, retries))| ChunkState {
            id,
            indices,
            // Exercise the overflow sentinel too: it must survive JSON.
            size_class: if class == 5 { usize::MAX } else { 32 << class },
            home_rank,
            retries,
            requeued: retries % 2 == 1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Satellite 3: serialize → deserialize of the checkpointed W-cycle
    /// sweep state is lossless. Serialization stability is checked as
    /// `json(x) == json(parse(json(x)))`, which with the shim's
    /// shortest-round-trip float rendering implies bit-exact `f64`s.
    #[test]
    fn checkpoint_json_round_trip_is_lossless(
        workload_seed in any::<u64>(),
        sweeps in arb_sweeps(),
        weights in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 0..5), 0..4),
        chunks in prop::collection::vec(arb_chunk(), 0..5),
        rank_seconds in prop::collection::vec(0.0f64..2.0, 1..5),
        sync_seconds in 0.0f64..1.0,
        cursor in 0usize..8,
        stolen in 0u64..9,
        recovery_seconds in 0.0f64..1.0,
    ) {
        let n = rank_seconds.len();
        let ckpt = RunCheckpoint {
            version: CHECKPOINT_VERSION,
            experiment: "proptest".to_string(),
            workload_seed,
            fingerprint: "vega20x3/proptest".to_string(),
            completed: chunks
                .iter()
                .map(|c| ChunkRecord {
                    chunk: c.clone(),
                    payload: ChunkPayload {
                        weights: weights.clone(),
                        convergence: sweeps.clone(),
                        widths: vec![64, 32, 16],
                    },
                })
                .collect(),
            queues: vec![
                RankQueueState {
                    chunks: chunks.clone(),
                    cursor,
                };
                n
            ],
            pool: chunks.clone(),
            rank_seconds,
            sync_seconds,
            killed: vec![false; n],
            stalls_applied: vec![true],
            kills_applied: vec![false],
            counters: CounterState {
                stolen_chunks: stolen,
                requeued_chunks: stolen / 2,
                retried_chunks: stolen / 3,
                unrecovered_chunks: 0,
                recovery_seconds,
                checkpoint_bytes: 0,
                killed_ranks: 1,
            },
        };
        let json = ckpt.to_json();
        let back = RunCheckpoint::from_json(&json).unwrap();
        prop_assert_eq!(json, back.to_json());
    }
}
