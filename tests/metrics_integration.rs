//! Cross-layer metrics integration: real W-cycle workloads drive the
//! simulator with an enabled [`wsvd_metrics::MetricsSink`], and the registry
//! must agree with the other two observability layers — the `Profiler`'s
//! per-kernel accounting and the structured-trace span totals — while
//! remaining a strict no-op (bit-identical simulated time and numerics)
//! when disabled, and byte-identical across repeated seeded runs.

use std::collections::BTreeMap;

use wsvd_bench::metrics_report::{kernel_report, kernel_rows};
use wsvd_bench::{BenchSnapshot, Tolerances, BENCH_SNAPSHOT_VERSION};
use wsvd_core::{wcycle_svd, WCycleConfig};
use wsvd_gpu_sim::{Gpu, V100};
use wsvd_linalg::generate::random_batch;
use wsvd_metrics::{parse_key, MetricsSink, Snapshot};
use wsvd_trace::{ArgValue, EventKind, TraceSink};

/// Runs a mixed batch (level-0 matrices plus one W-cycle descent) on a GPU
/// metered by `sink`, under experiment id `exp`.
fn metered_run(sink: &MetricsSink, exp: &str, batch: &[(usize, usize, usize, u64)]) -> Gpu {
    sink.set_experiment(exp);
    let mut gpu = Gpu::new(V100);
    gpu.set_metrics(sink.clone());
    let mut mats = Vec::new();
    for &(count, m, n, seed) in batch {
        mats.extend(random_batch(count, m, n, seed));
    }
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
    gpu
}

/// The invariant the whole design hangs on: for every kernel label, the
/// metrics registry, the `Profiler` and the trace-span totals all report the
/// same simulated seconds and launch counts — they read the same
/// `LaunchStats` accumulation path, so there is nothing to drift.
#[test]
fn metrics_totals_match_profiler_and_trace() {
    let trace = TraceSink::enabled();
    let sink = MetricsSink::enabled();
    sink.set_experiment("itest-totals");
    let mut gpu = Gpu::with_trace(V100, trace.clone());
    gpu.set_metrics(sink.clone());
    let mut mats = random_batch(3, 24, 24, 7);
    mats.extend(random_batch(1, 96, 96, 9));
    wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();

    // Trace-span totals per label: span duration + launch-overhead arg.
    let mut trace_totals: BTreeMap<String, f64> = BTreeMap::new();
    for e in trace.events().iter().filter(|e| e.track == "kernels") {
        if let EventKind::Span { dur, .. } = e.kind {
            let overhead = e
                .args
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"launch_overhead_s", ArgValue::F64(x)) => Some(*x),
                    _ => None,
                })
                .expect("kernel spans carry launch_overhead_s");
            *trace_totals.entry(e.name.clone()).or_insert(0.0) += dur + overhead;
        }
    }

    let snap = sink.snapshot();
    let profile = gpu.profile();
    let mut labels = 0usize;
    for (label, k) in profile.iter() {
        let c = |name: &str| snap.counter("itest-totals", label, None, name);
        let registry_seconds = c("kernel_seconds") + c("overhead_seconds");
        let tol = 1e-12 * k.seconds.max(1e-30);
        assert!(
            (registry_seconds - k.seconds).abs() <= tol,
            "label {label}: registry {registry_seconds} vs profiler {}",
            k.seconds
        );
        let trace_seconds = trace_totals.get(label).copied().unwrap_or(0.0);
        assert!(
            (registry_seconds - trace_seconds).abs() <= tol,
            "label {label}: registry {registry_seconds} vs trace {trace_seconds}"
        );
        assert_eq!(c("launches") as u64, k.launches, "label {label}");
        assert_eq!(c("flops"), k.totals.flops as f64, "label {label} flops");
        labels += 1;
    }
    assert!(labels >= 3, "expected several kernel labels, got {labels}");
    assert_eq!(
        kernel_rows(&snap, "itest-totals").len(),
        labels,
        "report rows must cover exactly the profiled kernels"
    );
}

/// Strips the `plan-cache` counter series, which carry per-run deltas of the
/// *global* autotune cache and legitimately differ between a cold and a warm
/// run of the same shapes (misses become hits).
fn without_plan_cache(snap: &Snapshot) -> Snapshot {
    let mut s = snap.clone();
    s.counters
        .retain(|k, _| parse_key(k).map(|(_, kernel, _, _)| kernel) != Some("plan-cache"));
    s
}

/// Histogram determinism under rayon: block bodies run on a thread pool, but
/// all metric recording happens on the host-serial timeline, so two identical
/// seeded runs must serialize to byte-identical JSON.
#[test]
fn identical_runs_yield_byte_identical_snapshots() {
    let run = || {
        let sink = MetricsSink::enabled();
        metered_run(
            &sink,
            "itest-determinism",
            &[(2, 20, 20, 11), (1, 72, 72, 13)],
        );
        without_plan_cache(&sink.snapshot()).to_json()
    };
    let json1 = run();
    let json2 = run();
    assert!(!json1.is_empty());
    assert_eq!(json1, json2, "snapshots must be byte-identical");
}

/// The zero-cost claim: a disabled sink records nothing and changes nothing.
/// Simulated time and every singular value must be bit-identical with the
/// registry off and on.
#[test]
fn metrics_off_is_bit_identical() {
    let run = |sink: MetricsSink| {
        let mut gpu = Gpu::new(V100);
        gpu.set_metrics(sink);
        let mats = random_batch(1, 64, 64, 17);
        let out = wcycle_svd(&gpu, &mats, &WCycleConfig::default()).unwrap();
        (gpu.elapsed_seconds(), out.results[0].sigma.clone())
    };
    let (t_off, sigma_off) = run(MetricsSink::disabled());
    let (t_on, sigma_on) = run(MetricsSink::enabled());
    assert_eq!(
        t_off.to_bits(),
        t_on.to_bits(),
        "metered simulated time must be bit-identical"
    );
    assert_eq!(sigma_off.len(), sigma_on.len());
    for (a, b) in sigma_off.iter().zip(&sigma_on) {
        assert_eq!(a.to_bits(), b.to_bits(), "sigma must be bit-identical");
    }
}

/// Satellite fix for the process-cumulative plan-cache semantics: the
/// registry records hit/miss as per-call increments, so `Snapshot::since`
/// yields exact per-run deltas — a cold run is all misses, a warm rerun of
/// the same shapes is all hits.
#[test]
fn plan_cache_counters_are_per_run_deltas() {
    let sink = MetricsSink::enabled();
    // 88x88 descends through level sizes no other test in this binary
    // touches, so the global plan cache is guaranteed cold here.
    let shapes: &[(usize, usize, usize, u64)] = &[(1, 88, 88, 19)];
    let c =
        |snap: &Snapshot, name: &str| snap.counter("itest-plan-cache", "plan-cache", None, name);

    let base = sink.snapshot();
    metered_run(&sink, "itest-plan-cache", shapes);
    let cold = sink.snapshot().since(&base);
    assert!(c(&cold, "misses") > 0.0, "cold run must miss");
    assert_eq!(c(&cold, "hits"), 0.0, "cold run cannot hit");

    let base = sink.snapshot();
    metered_run(&sink, "itest-plan-cache", shapes);
    let warm = sink.snapshot().since(&base);
    assert_eq!(c(&warm, "misses"), 0.0, "warm rerun cannot miss");
    assert_eq!(
        c(&warm, "hits"),
        c(&cold, "misses"),
        "every cold miss becomes a warm hit"
    );
}

/// A `BenchSnapshot` built from a real run round-trips through JSON and
/// self-compares clean under the default gate tolerances, and the per-kernel
/// report derived from it attributes every kernel to a roofline ceiling.
#[test]
fn bench_snapshot_from_real_run_round_trips() {
    let sink = MetricsSink::enabled();
    metered_run(&sink, "itest-bench", &[(1, 56, 56, 23)]);
    let bench = BenchSnapshot {
        version: BENCH_SNAPSHOT_VERSION as f64,
        scale: "reduced".to_string(),
        experiments: vec!["itest-bench".to_string()],
        metrics: sink.snapshot(),
    };
    let json = bench.to_json();
    let back = BenchSnapshot::from_json(&json).unwrap();
    assert_eq!(bench, back);
    assert_eq!(json, back.to_json(), "serialization must be deterministic");
    assert!(
        bench.compare(&back, &Tolerances::default()).is_empty(),
        "self-diff must be empty"
    );

    let rep = kernel_report(&bench.metrics, "itest-bench");
    assert!(rep.rows.len() >= 3, "expected several kernel rows");
    for row in &rep.rows {
        assert!(
            row[4] == "compute" || row[4] == "memory",
            "every kernel is attributed to a ceiling, got {:?}",
            row[4]
        );
    }
}
