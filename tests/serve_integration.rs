//! Serve-layer property tests (ISSUE 9 satellite):
//! * every accepted request lands in exactly one dispatched bucket;
//! * bucket shapes respect the Table VI caps (member dimensions within the
//!   class cap, bucket size within the policy's effective cap);
//! * per-request `queue_delay + service == end_to_end` holds *bitwise* in
//!   simulated time;
//! * identical seeds replay byte-identical latency histograms.

use proptest::prelude::*;

use wcycle_svd::gpu::{Gpu, V100};
use wsvd_datasets::TABLE_VI;
use wsvd_metrics::MetricsSink;
use wsvd_serve::{serve_trace, BatchPolicy, ServeConfig, ServeOutcome, Trace};

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    (0u64..5_000, 1usize..16).prop_map(|(max_wait_us, max_batch)| BatchPolicy {
        max_wait_us,
        max_batch,
    })
}

fn run(trace: &Trace, policy: BatchPolicy) -> ServeOutcome {
    let gpu = Gpu::new(V100);
    let cfg = ServeConfig {
        policy,
        ..ServeConfig::default()
    };
    serve_trace(&gpu, trace, &cfg, &MetricsSink::disabled()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_accepted_request_lands_in_exactly_one_bucket(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::poisson(18, 4_000.0, (6, 40), seed);
        let out = run(&trace, policy);
        // Nothing in this dimension range is rejectable.
        prop_assert_eq!(out.rejected, 0);
        prop_assert_eq!(out.records.len(), trace.requests.len());
        // Partition: bucket sizes sum to the record count, and every trace
        // id appears exactly once with a valid bucket back-reference.
        let batched: usize = out.batches.iter().map(|b| b.len).sum();
        prop_assert_eq!(batched, out.records.len());
        let mut ids: Vec<usize> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let want: Vec<usize> = (0..trace.requests.len()).collect();
        prop_assert_eq!(ids, want);
        for r in &out.records {
            prop_assert!(r.batch_id < out.batches.len());
            prop_assert_eq!(out.batches[r.batch_id].class, r.class);
        }
    }

    #[test]
    fn bucket_shapes_respect_table_vi_caps(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::bursty(18, 5, 20_000.0, 30_000, (6, 80), seed);
        let out = run(&trace, policy);
        for b in &out.batches {
            prop_assert!(b.len <= policy.max_batch.clamp(1, TABLE_VI[b.class].batch),
                "bucket of {} exceeds the policy cap", b.len);
            let cap = TABLE_VI[b.class].cap;
            for r in out.records.iter().filter(|r| r.batch_id == b.batch_id) {
                prop_assert!(r.rows.max(r.cols) <= cap,
                    "a {}x{} member in a class-{} (cap {cap}) bucket", r.rows, r.cols, b.class);
            }
        }
    }

    #[test]
    fn queue_plus_service_is_end_to_end_bitwise(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::assimilation(15, 6, 40, 4_000.0, seed);
        let out = run(&trace, policy);
        for r in &out.records {
            prop_assert_eq!(
                (r.queue_delay_us + r.service_us).to_bits(),
                r.end_to_end_us.to_bits()
            );
            prop_assert!(r.queue_delay_us >= 0.0);
            prop_assert!(r.service_us > 0.0);
        }
    }

    #[test]
    fn identical_seeds_replay_byte_identical_histograms(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let serve = || {
            let gpu = Gpu::new(V100);
            let sink = MetricsSink::enabled();
            sink.set_experiment("serve-prop");
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let trace = Trace::poisson(15, 6_000.0, (6, 40), seed);
            serve_trace(&gpu, &trace, &cfg, &sink).unwrap();
            sink.snapshot().to_json()
        };
        prop_assert_eq!(serve(), serve());
    }
}

#[test]
fn recording_does_not_perturb_the_served_timeline() {
    // The sink observes; it must never steer. A disabled-sink run and an
    // enabled-sink run of the same trace serve bit-identical records.
    let trace = Trace::poisson(15, 6_000.0, (6, 40), 77);
    let quiet = {
        let gpu = Gpu::new(V100);
        serve_trace(
            &gpu,
            &trace,
            &ServeConfig::default(),
            &MetricsSink::disabled(),
        )
        .unwrap()
    };
    let recorded = {
        let gpu = Gpu::new(V100);
        let sink = MetricsSink::enabled();
        sink.set_experiment("serve-prop");
        serve_trace(&gpu, &trace, &ServeConfig::default(), &sink).unwrap()
    };
    assert_eq!(quiet.records.len(), recorded.records.len());
    for (a, b) in quiet.records.iter().zip(&recorded.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.end_to_end_us.to_bits(), b.end_to_end_us.to_bits());
    }
    assert_eq!(quiet.makespan_us.to_bits(), recorded.makespan_us.to_bits());
}
