//! Serve-layer property tests (ISSUE 9 satellite, extended by ISSUE 10):
//! * every accepted request lands in exactly one dispatched bucket;
//! * bucket shapes respect the Table VI caps (member dimensions within the
//!   class cap, bucket size within the policy's effective cap);
//! * per-request `queue_delay + service == end_to_end` *and*
//!   `admission_wait + backlog == queue_delay` hold *bitwise* in simulated
//!   time;
//! * identical seeds replay byte-identical latency histograms and
//!   exemplars;
//! * every request record has exactly one request span whose duration is
//!   its end-to-end latency, and an enabled trace sink never perturbs the
//!   served timeline.

use proptest::prelude::*;

use wcycle_svd::gpu::{Gpu, V100};
use wsvd_datasets::TABLE_VI;
use wsvd_metrics::MetricsSink;
use wsvd_serve::{serve_trace, tail_report, BatchPolicy, ServeConfig, ServeOutcome, Trace};
use wsvd_trace::{EventKind, TraceSink};

fn arb_policy() -> impl Strategy<Value = BatchPolicy> {
    (0u64..5_000, 1usize..16).prop_map(|(max_wait_us, max_batch)| BatchPolicy {
        max_wait_us,
        max_batch,
    })
}

fn run(trace: &Trace, policy: BatchPolicy) -> ServeOutcome {
    let gpu = Gpu::new(V100);
    let cfg = ServeConfig {
        policy,
        ..ServeConfig::default()
    };
    serve_trace(&gpu, trace, &cfg, &MetricsSink::disabled()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_accepted_request_lands_in_exactly_one_bucket(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::poisson(18, 4_000.0, (6, 40), seed);
        let out = run(&trace, policy);
        // Nothing in this dimension range is rejectable.
        prop_assert_eq!(out.rejected, 0);
        prop_assert_eq!(out.records.len(), trace.requests.len());
        // Partition: bucket sizes sum to the record count, and every trace
        // id appears exactly once with a valid bucket back-reference.
        let batched: usize = out.batches.iter().map(|b| b.len).sum();
        prop_assert_eq!(batched, out.records.len());
        let mut ids: Vec<usize> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let want: Vec<usize> = (0..trace.requests.len()).collect();
        prop_assert_eq!(ids, want);
        for r in &out.records {
            prop_assert!(r.batch_id < out.batches.len());
            prop_assert_eq!(out.batches[r.batch_id].class, r.class);
        }
    }

    #[test]
    fn bucket_shapes_respect_table_vi_caps(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::bursty(18, 5, 20_000.0, 30_000, (6, 80), seed);
        let out = run(&trace, policy);
        for b in &out.batches {
            prop_assert!(b.len <= policy.max_batch.clamp(1, TABLE_VI[b.class].batch),
                "bucket of {} exceeds the policy cap", b.len);
            let cap = TABLE_VI[b.class].cap;
            for r in out.records.iter().filter(|r| r.batch_id == b.batch_id) {
                prop_assert!(r.rows.max(r.cols) <= cap,
                    "a {}x{} member in a class-{} (cap {cap}) bucket", r.rows, r.cols, b.class);
            }
        }
    }

    #[test]
    fn queue_plus_service_is_end_to_end_bitwise(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::assimilation(15, 6, 40, 4_000.0, seed);
        let out = run(&trace, policy);
        for r in &out.records {
            prop_assert_eq!(
                (r.queue_delay_us + r.service_us).to_bits(),
                r.end_to_end_us.to_bits()
            );
            prop_assert!(r.queue_delay_us >= 0.0);
            prop_assert!(r.service_us > 0.0);
        }
    }

    #[test]
    fn admission_plus_backlog_is_queue_delay_bitwise(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let trace = Trace::bursty(16, 4, 24_000.0, 20_000, (6, 40), seed);
        let out = run(&trace, policy);
        for r in &out.records {
            prop_assert_eq!(
                (r.admission_wait_us + r.backlog_us).to_bits(),
                r.queue_delay_us.to_bits()
            );
            prop_assert!(r.admission_wait_us >= 0.0);
            prop_assert!(r.backlog_us >= 0.0);
            prop_assert!(r.trigger_us >= r.arrival_us);
            // The policy never holds a request past its wait bound.
            prop_assert!(r.admission_wait_us <= policy.max_wait_us as f64);
        }
        // The tail report over these records is deterministic text.
        prop_assert_eq!(tail_report(&out, 3).render(), tail_report(&out, 3).render());
    }

    #[test]
    fn identical_seeds_replay_byte_identical_histograms(
        seed in 0u64..1_000,
        policy in arb_policy(),
    ) {
        let serve = || {
            let gpu = Gpu::new(V100);
            let sink = MetricsSink::enabled();
            sink.set_experiment("serve-prop");
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let trace = Trace::poisson(15, 6_000.0, (6, 40), seed);
            serve_trace(&gpu, &trace, &cfg, &sink).unwrap();
            sink.snapshot().to_json()
        };
        prop_assert_eq!(serve(), serve());
    }
}

#[test]
fn recording_does_not_perturb_the_served_timeline() {
    // The sink observes; it must never steer. A disabled-sink run and an
    // enabled-sink run of the same trace serve bit-identical records.
    let trace = Trace::poisson(15, 6_000.0, (6, 40), 77);
    let quiet = {
        let gpu = Gpu::new(V100);
        serve_trace(
            &gpu,
            &trace,
            &ServeConfig::default(),
            &MetricsSink::disabled(),
        )
        .unwrap()
    };
    let recorded = {
        let gpu = Gpu::new(V100);
        let sink = MetricsSink::enabled();
        sink.set_experiment("serve-prop");
        serve_trace(&gpu, &trace, &ServeConfig::default(), &sink).unwrap()
    };
    assert_eq!(quiet.records.len(), recorded.records.len());
    for (a, b) in quiet.records.iter().zip(&recorded.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.end_to_end_us.to_bits(), b.end_to_end_us.to_bits());
    }
    assert_eq!(quiet.makespan_us.to_bits(), recorded.makespan_us.to_bits());
}

#[test]
fn exemplars_replay_byte_identical_and_reach_the_exposition() {
    // Identical seeds must reproduce identical exemplars — down to the
    // Prometheus exposition bytes — and the serve histograms must carry
    // request-id exemplars on their tail buckets.
    let serve = || {
        let gpu = Gpu::new(V100);
        let sink = MetricsSink::enabled();
        sink.set_experiment("serve-exemplar");
        let trace = Trace::poisson(15, 6_000.0, (6, 40), 99);
        serve_trace(&gpu, &trace, &ServeConfig::default(), &sink).unwrap();
        sink.snapshot().to_prometheus()
    };
    let a = serve();
    assert_eq!(a, serve());
    assert!(
        a.contains("# {request_id=\""),
        "no OpenMetrics exemplars in the serve exposition"
    );
}

#[test]
fn every_record_has_exactly_one_request_span_of_its_end_to_end_duration() {
    // Dimensions up to 96 so at least some buckets decompose multilevel
    // and emit per-level W-cycle spans for the bucket spans to parent.
    let trace = Trace::bursty(15, 4, 24_000.0, 20_000, (24, 96), 101);
    let sink = TraceSink::enabled();
    let gpu = Gpu::with_trace(V100, sink.clone());
    let out = serve_trace(
        &gpu,
        &trace,
        &ServeConfig::default(),
        &MetricsSink::disabled(),
    )
    .unwrap();
    let events = sink.events();
    for r in &out.records {
        let spans: Vec<_> = events
            .iter()
            .filter(|e| {
                e.name == format!("req {}", r.id) && e.track == format!("class {}", r.class)
            })
            .collect();
        assert_eq!(spans.len(), 1, "request {} has {} spans", r.id, spans.len());
        let EventKind::Span { start, dur } = spans[0].kind else {
            panic!("request {} event is not a span", r.id);
        };
        assert_eq!(start.to_bits(), (r.arrival_us as f64 * 1.0e-6).to_bits());
        assert_eq!(dur.to_bits(), (r.end_to_end_us * 1.0e-6).to_bits());
    }
    // Every dispatched bucket appears twice: once on the serving process's
    // `device` track and once on the GPU's `wcycle` track.
    let mut bucket_bounds = Vec::new();
    for b in &out.batches {
        let name = format!("bucket {}", b.batch_id);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == name && e.track == "device")
                .count(),
            1
        );
        let on_gpu: Vec<_> = events
            .iter()
            .filter(|e| e.name == name && e.track == "wcycle" && e.pid == gpu.trace_pid())
            .collect();
        assert_eq!(on_gpu.len(), 1);
        let EventKind::Span { start, dur } = on_gpu[0].kind else {
            panic!("bucket {} event is not a span", b.batch_id);
        };
        bucket_bounds.push((start, start + dur));
    }
    // Every per-level W-cycle span nests inside exactly one bucket span —
    // the parenting Perfetto renders — and multilevel work exists at these
    // dimensions, so the property is not vacuous.
    let levels: Vec<_> = events
        .iter()
        .filter(|e| e.track == "wcycle" && e.pid == gpu.trace_pid() && e.name.starts_with("level "))
        .collect();
    assert!(
        !levels.is_empty(),
        "no per-level W-cycle spans were emitted"
    );
    for lv in levels {
        let EventKind::Span { start, dur } = lv.kind else {
            panic!("level event is not a span");
        };
        let parents = bucket_bounds
            .iter()
            .filter(|(lo, hi)| start >= *lo && start + dur <= hi + 1.0e-12)
            .count();
        assert_eq!(parents, 1, "a level span nests in {parents} bucket spans");
    }
}

#[test]
fn an_enabled_trace_sink_does_not_perturb_the_served_timeline() {
    // Mirror of the metrics no-op property for the trace sink: tracing a
    // served run must replay bit-identical records and makespan.
    let trace = Trace::poisson(15, 6_000.0, (6, 40), 103);
    let quiet = {
        let gpu = Gpu::new(V100);
        serve_trace(
            &gpu,
            &trace,
            &ServeConfig::default(),
            &MetricsSink::disabled(),
        )
        .unwrap()
    };
    let traced = {
        let gpu = Gpu::with_trace(V100, TraceSink::enabled());
        serve_trace(
            &gpu,
            &trace,
            &ServeConfig::default(),
            &MetricsSink::disabled(),
        )
        .unwrap()
    };
    assert_eq!(quiet.records.len(), traced.records.len());
    for (a, b) in quiet.records.iter().zip(&traced.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.admission_wait_us.to_bits(), b.admission_wait_us.to_bits());
        assert_eq!(a.backlog_us.to_bits(), b.backlog_us.to_bits());
        assert_eq!(a.end_to_end_us.to_bits(), b.end_to_end_us.to_bits());
    }
    assert_eq!(quiet.makespan_us.to_bits(), traced.makespan_us.to_bits());
}
