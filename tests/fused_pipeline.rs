//! Fused launch pipeline invariants (the `LaunchGraph` replay model):
//!
//! * a replayed graph produces bit-identical counters and numerics to the
//!   serial launch sequence — with the sanitizer off *and* on full — while
//!   paying less overhead and less kernel makespan (coalesced blocks ride
//!   already-resident SM slots);
//! * the process-wide `set_fused_default` knob (what `repro --fused` sets)
//!   plumbs into `WCycleConfig::default()` and through the W-cycle without
//!   perturbing results.
//!
//! This file runs as its own process, so flipping the fused default here
//! cannot race other test binaries' `WCycleConfig::default()` calls.

use proptest::prelude::*;

use wcycle_svd::gpu::{Gpu, KernelConfig, LaunchStats, SanitizeMode, V100};
use wcycle_svd::linalg::generate::random_batch;
use wcycle_svd::{wcycle_svd, WCycleConfig};

/// Replays a deterministic launch sequence, optionally inside one fused
/// scope, and returns the per-launch stats.
fn run_sequence(gpu: &Gpu, launches: &[(usize, usize, usize)], fused: bool) -> Vec<LaunchStats> {
    let scope = fused.then(|| gpu.launch_graph("replay"));
    let stats = launches
        .iter()
        .map(|&(grid, tpb, work)| {
            let cfg = KernelConfig::new(grid, tpb, 2048, "prop_kernel");
            gpu.launch_collect(cfg, |b, ctx| {
                let buf = ctx.smem().alloc(32)?;
                ctx.smem_write(0, &buf, 0, 32);
                ctx.sync_threads();
                ctx.par_step(work + b, 2);
                ctx.team_reduce(4, 8, work.min(256));
                Ok(b * 31 + work)
            })
            .unwrap()
            .1
        })
        .collect();
    drop(scope);
    stats
}

fn arb_launches() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    prop::collection::vec(
        (1usize..24, 0usize..4, 64usize..4000)
            .prop_map(|(grid, t, work)| (grid, [32usize, 64, 128, 256][t], work)),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn replayed_graph_is_bit_identical_to_serial(launches in arb_launches()) {
        for mode in [SanitizeMode::Off, SanitizeMode::Full] {
            let serial_gpu = Gpu::with_sanitize(V100, mode);
            let fused_gpu = Gpu::with_sanitize(V100, mode);
            let serial = run_sequence(&serial_gpu, &launches, false);
            let fused = run_sequence(&fused_gpu, &launches, true);
            for (s, f) in serial.iter().zip(&fused) {
                // Counters and occupancy are schedule-independent: bit-equal.
                prop_assert_eq!(s.totals, f.totals);
                prop_assert_eq!(s.occupancy.to_bits(), f.occupancy.to_bits());
                // Timing can only improve: overhead amortizes, and coalesced
                // blocks riding resident waves shrink makespan.
                prop_assert!(f.overhead_seconds <= s.overhead_seconds);
                prop_assert!(f.kernel_seconds <= s.kernel_seconds);
            }
            let st = serial_gpu.timeline();
            let ft = fused_gpu.timeline();
            prop_assert_eq!(st.launches, ft.launches);
            prop_assert_eq!(st.totals, ft.totals);
            prop_assert!(ft.seconds <= st.seconds);
            // The first node pays the full cost, so a 1-launch graph breaks
            // even; every extra node amortizes.
            if launches.len() > 1 {
                prop_assert!(ft.overhead_seconds < st.overhead_seconds);
            } else {
                prop_assert_eq!(
                    ft.overhead_seconds.to_bits(),
                    st.overhead_seconds.to_bits()
                );
                prop_assert_eq!(ft.kernel_seconds.to_bits(), st.kernel_seconds.to_bits());
            }
            // The sanitizer sees the same blocks either way.
            prop_assert_eq!(
                serial_gpu.sanitizer_report().stats.blocks_checked,
                fused_gpu.sanitizer_report().stats.blocks_checked
            );
            prop_assert!(serial_gpu.sanitizer_report().is_clean());
            prop_assert!(fused_gpu.sanitizer_report().is_clean());
            // Graph accounting: one graph, every launch a node.
            let g = fused_gpu.graph_stats();
            prop_assert_eq!(g.graphs, 1);
            prop_assert_eq!(g.nodes, launches.len() as u64);
            prop_assert_eq!(serial_gpu.graph_stats().nodes, 0);
        }
    }
}

#[test]
fn fused_default_plumbs_through_default_config_and_wcycle() {
    assert!(!wcycle_svd::core::fused_default());
    assert!(!WCycleConfig::default().fused);

    let mats = random_batch(2, 80, 80, 1234);
    let serial_gpu = Gpu::new(V100);
    let serial = wcycle_svd(&serial_gpu, &mats, &WCycleConfig::default()).unwrap();

    wcycle_svd::core::set_fused_default(true);
    let cfg = WCycleConfig::default();
    assert!(cfg.fused, "set_fused_default must flow into Default");
    let fused_gpu = Gpu::new(V100);
    let fused = wcycle_svd(&fused_gpu, &mats, &cfg).unwrap();
    wcycle_svd::core::set_fused_default(false);
    assert!(!WCycleConfig::default().fused);

    for (s, f) in serial.results.iter().zip(&fused.results) {
        assert_eq!(s.sigma, f.sigma);
        assert_eq!(s.u.as_slice(), f.u.as_slice());
    }
    assert!(fused_gpu.graph_stats().graphs >= 1);
    assert!(fused_gpu.elapsed_seconds() < serial_gpu.elapsed_seconds());
    assert_eq!(serial_gpu.timeline().totals, fused_gpu.timeline().totals);
}
