//! Offline shim for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched`, `BenchmarkId` — as a plain timing loop that prints
//! mean wall-clock per iteration. No statistics, plotting, or comparison:
//! benches exist here as compile-checked perf smoke tests, and the
//! paper-shaped measurements come from the simulator, not host time.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _c: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.label);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, e.g. `matmul/64`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How `iter_batched` amortizes setup (ignored by the shim's timing loop).
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations (plus one
    /// untimed warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
        }
        self.iters += self.samples as u64;
    }

    fn report(&self, group: &str, label: &str) {
        if self.iters == 0 {
            println!("bench {group}/{label}: no iterations");
            return;
        }
        let mean = self.total_nanos as f64 / self.iters as f64;
        let (value, unit) = if mean >= 1e9 {
            (mean / 1e9, "s")
        } else if mean >= 1e6 {
            (mean / 1e6, "ms")
        } else if mean >= 1e3 {
            (mean / 1e3, "us")
        } else {
            (mean, "ns")
        };
        println!(
            "bench {group}/{label}: {value:.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// Declares a benchmark group runner, mirroring upstream's
/// `criterion_group! { name = n; config = c; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n);
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("matmul", 64).label, "matmul/64");
        assert_eq!(BenchmarkId::from_parameter(96).label, "96");
    }
}
