//! Offline shim for the `rayon` crate.
//!
//! The simulator uses exactly two parallel pipelines:
//!
//! * `slice.par_iter_mut().enumerate().map(f).collect::<Vec<_>>()`
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//!
//! This shim reproduces those pipelines on `std::thread::scope`, splitting
//! the work into one contiguous chunk per available core. Outputs are
//! reassembled in input order, so results are identical to sequential
//! execution (and to upstream rayon) — the parallelism is pure wall-clock.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads to use for a job of `len` items.
fn workers(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Splits `len` items into `parts` contiguous chunk lengths (ragged tail
/// spread over the leading chunks).
fn chunk_lens(len: usize, parts: usize) -> Vec<usize> {
    let base = len / parts;
    let extra = len % parts;
    (0..parts).map(|k| base + usize::from(k < extra)).collect()
}

/// The traits user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Extension trait providing `par_iter_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references, in order.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }
}

/// Conversion into a parallel iterator (ranges only, in this shim).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Parallel iterator over a mutable slice.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> SliceEnumerate<'a, T> {
        SliceEnumerate { slice: self.slice }
    }
}

/// Enumerated parallel iterator over a mutable slice.
pub struct SliceEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceEnumerate<'a, T> {
    /// Applies `f` to every `(index, &mut element)` pair.
    pub fn map<R, F>(self, f: F) -> SliceEnumerateMap<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        SliceEnumerateMap {
            slice: self.slice,
            f,
        }
    }
}

/// Mapped, enumerated parallel iterator over a mutable slice.
pub struct SliceEnumerateMap<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T, R, F> SliceEnumerateMap<'a, T, F>
where
    T: Send,
    R: Send,
    F: Fn((usize, &mut T)) -> R + Sync,
{
    /// Executes the pipeline and collects outputs in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let len = self.slice.len();
        let parts = workers(len);
        let f = &self.f;
        if parts <= 1 {
            return self.slice.iter_mut().enumerate().map(f).collect();
        }
        let lens = chunk_lens(len, parts);
        let mut outputs: Vec<Vec<R>> = Vec::with_capacity(parts);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(parts);
            let mut rest = self.slice;
            let mut offset = 0usize;
            for &clen in &lens {
                let (chunk, tail) = rest.split_at_mut(clen);
                rest = tail;
                let base = offset;
                offset += clen;
                handles.push(s.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(k, item)| f((base + k, item)))
                        .collect::<Vec<R>>()
                }));
            }
            for h in handles {
                outputs.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl RangeIter {
    /// Applies `f` to every index.
    pub fn map<R, F>(self, f: F) -> RangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        RangeMap {
            range: self.range,
            f,
        }
    }
}

/// Mapped parallel iterator over a range.
pub struct RangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<R, F> RangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Executes the pipeline and collects outputs in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let len = self.range.len();
        let parts = workers(len);
        let f = &self.f;
        if parts <= 1 {
            return self.range.map(f).collect();
        }
        let lens = chunk_lens(len, parts);
        let start = self.range.start;
        let mut outputs: Vec<Vec<R>> = Vec::with_capacity(parts);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(parts);
            let mut lo = start;
            for &clen in &lens {
                let sub = lo..lo + clen;
                lo += clen;
                handles.push(s.spawn(move || sub.map(f).collect::<Vec<R>>()));
            }
            for h in handles {
                outputs.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_pipeline_preserves_order_and_mutates() {
        let mut data = vec![0u64; 1000];
        let out: Vec<u64> = data
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x = i as u64 * 2;
                *x + 1
            })
            .collect();
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, i as u64 * 2 + 1);
        }
    }

    #[test]
    fn range_pipeline_preserves_order() {
        let out: Vec<usize> = (10..500).into_par_iter().map(|b| b * b).collect();
        assert_eq!(out.len(), 490);
        for (k, v) in out.iter().enumerate() {
            let b = k + 10;
            assert_eq!(*v, b * b);
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter_mut().enumerate().map(|(_, x)| *x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (0..0).into_par_iter().map(|b| b * 2).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_lens_cover_exactly() {
        assert_eq!(super::chunk_lens(10, 3), vec![4, 3, 3]);
        assert_eq!(super::chunk_lens(2, 2), vec![1, 1]);
        assert_eq!(super::chunk_lens(5, 1), vec![5]);
    }
}
