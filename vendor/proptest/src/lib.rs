//! Offline shim for `proptest`.
//!
//! Supports the strategy forms used by this workspace's property tests:
//! integer/float ranges, `any::<T>()`, tuples (2–4), `prop_map`,
//! `prop::collection::vec`, plus the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!` macros. Each test runs
//! `ProptestConfig::cases` iterations with an RNG seeded from the test name,
//! so failures are reproducible run-to-run. No shrinking: the failing input
//! is printed as-is via the assertion message.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Runner configuration (`cases` is the only knob this shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: discard this input and draw another.
    Reject(String),
}

/// Executes one property test: draws inputs and evaluates the body until
/// `config.cases` accepted cases pass, panicking on the first failure.
pub fn run_prop_test<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: stable seed, distinct per test.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{name}: gave up after {rejected} prop_assume! rejections \
                         ({accepted}/{} cases accepted)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property falsified on case {accepted}: {msg}");
            }
        }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(usize, u64, u32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// Strategy for any value of `T` (`any::<u64>()` and friends).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;

        /// Strategy for `Vec`s whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests. Mirrors upstream's
/// `proptest! { #![proptest_config(...)] #[test] fn name(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_prop_test(stringify!($name), config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a property within `proptest!`; failure reports the case instead
/// of unwinding through user code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality within `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn tuples_and_map_compose(
            v in (1usize..5, 1usize..5, any::<u64>()).prop_map(|(a, b, s)| a * 100 + b + (s % 2) as usize)
        ) {
            prop_assert!(v >= 101);
            prop_assert!(v < 505, "v = {}", v);
        }

        #[test]
        fn collection_vec_respects_len(xs in prop::collection::vec(-1.0f64..1.0, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let draw_all = || {
            let mut out = Vec::new();
            crate::run_prop_test(
                "runner_is_deterministic",
                ProptestConfig {
                    cases: 10,
                    ..ProptestConfig::default()
                },
                |rng| {
                    out.push(Strategy::sample(&(0u64..1000), rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(draw_all(), draw_all());
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_context() {
        crate::run_prop_test(
            "failures_panic_with_context",
            ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            |_| Err(crate::TestCaseError::Fail("nope".into())),
        );
    }
}
