//! Offline shim for `serde_derive`.
//!
//! Supports exactly what this workspace derives on: non-generic structs with
//! named fields. The generated impls target the shim `serde` crate's
//! value-based model (`to_value` / `from_value`) rather than upstream's
//! visitor API, which lets this crate avoid `syn`/`quote` entirely: the
//! struct is scanned with the bare `proc_macro` token API (only the field
//! *names* matter — types are resolved by trait dispatch), and the impl is
//! assembled as a string and re-parsed.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim: `fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "m.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})));"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Map(m)\n\
             }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim: `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::map_field(m, \"{f}\", \"{name}\")?)?,"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let m = v.as_map().ok_or_else(|| \
                     ::serde::Error::msg(\"expected JSON object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}

/// Extracts `(struct_name, field_names)` from a derive input. Panics (a
/// compile error at the derive site) on enums, tuple structs, or generics —
/// none of which this workspace serializes.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!("serde_derive shim supports only structs, got {other:?}"),
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim does not support generic structs ({name})")
            }
            Some(_) => continue,
            None => {
                panic!("serde_derive shim: {name} has no braced field list (tuple/unit struct?)")
            }
        }
    };
    (name, field_names(body))
}

/// Splits a named-field body on top-level commas (tracking `<...>` nesting,
/// which does not form token groups) and takes the ident before each `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    let mut flush = |current: &mut Vec<TokenTree>| {
        if current.is_empty() {
            return;
        }
        let mut iter = current.drain(..).peekable();
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => panic!("expected field name, got {other:?}"),
        }
    };
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                flush(&mut current);
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    flush(&mut current);
    fields
}

/// Skips `#[...]` attribute pairs (doc comments arrive in this form too).
fn skip_attributes<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next(); // '#'
        tokens.next(); // '[...]'
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
fn skip_visibility<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}
