//! Offline shim for `parking_lot`: a `Mutex` backed by `std::sync::Mutex`
//! with `parking_lot`'s non-poisoning `lock()` signature.

#![warn(missing_docs)]

/// A mutual-exclusion lock whose `lock` cannot fail (poisoning is absorbed,
/// matching `parking_lot` semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
