//! Offline shim for `serde_json`, built on the shim `serde` crate's
//! [`Value`] tree: `to_string` / `to_string_pretty` render a serialized
//! value, `from_str` parses JSON text back into one and converts.
//!
//! Output is deterministic: struct fields render in declaration order,
//! `f64` uses Rust's shortest round-trip formatting, and no whitespace
//! depends on anything but the data.

#![warn(missing_docs)]

pub use serde::{Error, Value};
use std::fmt::Write as _;

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-indented JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and converts it to `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---- rendering -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                // Like upstream serde_json: non-finite numbers become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, k| {
            write_value(out, &items[k], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, k| {
                let (key, val) = &entries[k];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, k);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"b\"\nc".into())),
            ("n".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-5)),
            ("x".into(), Value::F64(1.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "list".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::Str("x".into())]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for f in [0.1, 1e-9, 123456.789, -2.5e300] {
            let s = to_string(&Value::F64(f)).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back.as_f64().unwrap(), f, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn scientific_and_unicode_input() {
        let v: Value = from_str(r#"{"e": 1.5e3, "s": "A😀"}"#).unwrap();
        assert_eq!(v.get("e").unwrap().as_f64().unwrap(), 1500.0);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "A\u{1F600}");
    }
}
