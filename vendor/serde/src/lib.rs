//! Offline shim for `serde`.
//!
//! Instead of upstream's serializer/deserializer visitor machinery, this shim
//! round-trips everything through an owned JSON-like [`Value`] tree:
//! `Serialize::to_value` / `Deserialize::from_value`. The `serde_json` shim
//! then renders and parses that tree. Far less general than real serde, but
//! exactly sufficient for the derived structs in this workspace — and the
//! derive macros (re-exported from `serde_derive`) keep call sites unchanged.

#![warn(missing_docs)]

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like data tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; u64 counters must not lose bits).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order (derives preserve field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Exact `u64` view (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (first match), if this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error produced by `from_value` conversions (and re-used by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in a decoded map (derive support).
pub fn map_field<'v>(m: &'v [(String, Value)], key: &str, ty: &str) -> Result<&'v Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}` for {ty}")))
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- scalar impls ----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::U64(u) => i64::try_from(*u).map_err(|_| Error::msg("integer out of range"))?,
                    Value::I64(i) => *i,
                    _ => return Err(Error::msg("expected integer")),
                };
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::msg("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string. Only device names pass through here, a
    /// handful of short constants per process — an acceptable trade for
    /// keeping `DeviceSpec.name: &'static str`.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected string"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec!["a".to_string(), "b".to_string()];
        assert_eq!(Vec::<String>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn missing_field_is_an_error() {
        let m = [("a".to_string(), Value::U64(1))];
        assert!(map_field(&m, "a", "T").is_ok());
        assert!(map_field(&m, "b", "T")
            .unwrap_err()
            .to_string()
            .contains("missing field `b`"));
    }

    #[test]
    fn static_str_leak_decode() {
        let s: &'static str = Deserialize::from_value(&Value::Str("dev".into())).unwrap();
        assert_eq!(s, "dev");
    }
}
