//! Offline shim for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! tiny subset of `rand` it actually uses: a seedable deterministic generator
//! (`rngs::StdRng`), `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range}` over the range types that appear in this repository.
//!
//! The bit stream is splitmix64 — *not* the upstream `StdRng` stream — but
//! every generator in the workspace is seeded, so results remain fully
//! deterministic run-to-run (which is all the simulator requires).

#![warn(missing_docs)]

/// Seedable generators.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one u64 of
        // state, and trivially seedable — ideal for a deterministic shim.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64);

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The sampling surface of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
